#include "dist/wire.hpp"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace coopcr::dist {

namespace {

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

/// Write `n` bytes, retrying on EINTR and short writes. Throws on error.
void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t written = 0;
  while (written < n) {
    const ssize_t rc = ::write(fd, data + written, n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      COOPCR_CHECK(false, std::string("wire write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<std::size_t>(rc);
  }
}

/// Read exactly `n` bytes. Returns false on clean EOF before the first
/// byte; throws on mid-buffer EOF or read errors.
bool read_exact(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, data + got, n - got);
    if (rc < 0) {
      if (errno == EINTR) continue;
      COOPCR_CHECK(false, std::string("wire read failed: ") +
                              std::strerror(errno));
    }
    if (rc == 0) {
      if (got == 0) return false;
      COOPCR_CHECK(false, "wire stream truncated mid-frame (peer died?)");
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

}  // namespace

void Encoder::u16(std::uint16_t v) { put_u16(buf_, v); }
void Encoder::u32(std::uint32_t v) { put_u32(buf_, v); }
void Encoder::u64(std::uint64_t v) { put_u64(buf_, v); }
void Encoder::f64(double v) { put_u64(buf_, std::bit_cast<std::uint64_t>(v)); }

void Encoder::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

const std::uint8_t* Decoder::take(std::size_t n) {
  COOPCR_CHECK(pos_ + n <= size_,
               "wire payload truncated: need " + std::to_string(n) +
                   " bytes at offset " + std::to_string(pos_) + " of " +
                   std::to_string(size_));
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint16_t Decoder::u16() {
  const std::uint8_t* p = take(2);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t Decoder::u32() { return get_u32(take(4)); }

std::uint64_t Decoder::u64() {
  const std::uint8_t* p = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

double Decoder::f64() { return std::bit_cast<double>(u64()); }

std::string Decoder::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = take(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

void Decoder::expect_done() const {
  COOPCR_CHECK(pos_ == size_, "wire payload has " +
                                  std::to_string(size_ - pos_) +
                                  " trailing bytes");
}

void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload) {
  COOPCR_CHECK(payload.size() <= kMaxFramePayload, "frame payload too large");
  std::vector<std::uint8_t> frame;
  frame.reserve(6 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u16(frame, static_cast<std::uint16_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());
  write_all(fd, frame.data(), frame.size());
}

std::optional<Frame> read_frame(int fd) {
  std::uint8_t head[6];
  if (!read_exact(fd, head, sizeof(head))) return std::nullopt;
  const std::uint32_t len = get_u32(head);
  COOPCR_CHECK(len <= kMaxFramePayload,
               "wire frame claims " + std::to_string(len) +
                   " payload bytes — corrupt stream");
  Frame frame;
  frame.type = static_cast<MsgType>(head[4] | (head[5] << 8));
  frame.payload.resize(len);
  if (len > 0) {
    COOPCR_CHECK(read_exact(fd, frame.payload.data(), len),
                 "wire stream truncated mid-frame (peer died?)");
  }
  return frame;
}

void FrameBuffer::feed(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameBuffer::next() {
  if (buf_.size() < 6) return std::nullopt;
  const std::uint32_t len = get_u32(buf_.data());
  COOPCR_CHECK(len <= kMaxFramePayload,
               "wire frame claims " + std::to_string(len) +
                   " payload bytes — corrupt stream");
  if (buf_.size() < 6 + static_cast<std::size_t>(len)) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(buf_[4] | (buf_[5] << 8));
  frame.payload.assign(buf_.begin() + 6, buf_.begin() + 6 + len);
  buf_.erase(buf_.begin(), buf_.begin() + 6 + len);
  return frame;
}

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg) {
  Encoder enc;
  enc.u32(msg.protocol);
  enc.u64(msg.spec_digest);
  return enc.bytes();
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& payload) {
  Decoder dec(payload);
  HelloMsg msg;
  msg.protocol = dec.u32();
  msg.spec_digest = dec.u64();
  dec.expect_done();
  return msg;
}

void validate_hello(const HelloMsg& hello, std::uint64_t expected_digest) {
  COOPCR_CHECK(hello.protocol == kProtocolVersion,
               "worker speaks protocol " + std::to_string(hello.protocol) +
                   ", coordinator speaks " + std::to_string(kProtocolVersion));
  COOPCR_CHECK(hello.spec_digest == expected_digest,
               "worker rebuilt a different experiment grid (spec digest "
               "mismatch) — refusing to dispatch units to it");
}

std::vector<std::uint8_t> encode_unit(const UnitMsg& msg) {
  Encoder enc;
  enc.u32(msg.point);
  enc.u32(msg.replica);
  return enc.bytes();
}

UnitMsg decode_unit(const std::vector<std::uint8_t>& payload) {
  Decoder dec(payload);
  UnitMsg msg;
  msg.point = dec.u32();
  msg.replica = dec.u32();
  dec.expect_done();
  return msg;
}

namespace {

void encode_tuples(Encoder& enc,
                   const std::vector<ReplicaStrategyMetrics>& tuples) {
  enc.u32(static_cast<std::uint32_t>(tuples.size()));
  for (const ReplicaStrategyMetrics& m : tuples) {
    enc.f64(m.waste_ratio);
    enc.f64(m.efficiency);
    enc.f64(m.utilization);
    enc.f64(m.failures_hit);
    enc.f64(m.checkpoints);
    enc.f64(m.energy_joules);
    enc.f64(m.energy_waste_ratio);
    enc.f64(m.ckpt_waste_ratio);
  }
}

std::vector<ReplicaStrategyMetrics> decode_tuples(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  COOPCR_CHECK(n <= 4096, "slot claims " + std::to_string(n) +
                              " strategy tuples — corrupt payload");
  std::vector<ReplicaStrategyMetrics> tuples;
  tuples.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    ReplicaStrategyMetrics m;
    m.waste_ratio = dec.f64();
    m.efficiency = dec.f64();
    m.utilization = dec.f64();
    m.failures_hit = dec.f64();
    m.checkpoints = dec.f64();
    m.energy_joules = dec.f64();
    m.energy_waste_ratio = dec.f64();
    m.ckpt_waste_ratio = dec.f64();
    tuples.push_back(m);
  }
  return tuples;
}

}  // namespace

void encode_slot(Encoder& enc, const ReplicaSlot& slot) {
  // Layout v3 (kProtocolVersion / journal format 3): the v2 layout — primal
  // baselines + primal tuples, the antithetic partner's baselines and tuples
  // (0.0 / count 0 for unpaired campaigns), two control-variate predictor
  // doubles (0.0 when control variates are off) — followed by the six
  // realised workload-feature doubles (primal total node-seconds, job
  // count, max class share, then the antithetic partner's three, 0.0 when
  // unpaired) that post-stratification bins on.
  enc.f64(slot.baseline_useful);
  enc.f64(slot.baseline_useful_energy);
  encode_tuples(enc, slot.per_strategy);
  enc.f64(slot.baseline_useful_anti);
  enc.f64(slot.baseline_useful_energy_anti);
  encode_tuples(enc, slot.antithetic);
  enc.f64(slot.cv_predictor);
  enc.f64(slot.cv_predictor_anti);
  enc.f64(slot.work_total);
  enc.f64(slot.work_jobs);
  enc.f64(slot.work_max_share);
  enc.f64(slot.work_total_anti);
  enc.f64(slot.work_jobs_anti);
  enc.f64(slot.work_max_share_anti);
}

ReplicaSlot decode_slot(Decoder& dec) {
  ReplicaSlot slot;
  slot.baseline_useful = dec.f64();
  slot.baseline_useful_energy = dec.f64();
  slot.per_strategy = decode_tuples(dec);
  slot.baseline_useful_anti = dec.f64();
  slot.baseline_useful_energy_anti = dec.f64();
  slot.antithetic = decode_tuples(dec);
  slot.cv_predictor = dec.f64();
  slot.cv_predictor_anti = dec.f64();
  slot.work_total = dec.f64();
  slot.work_jobs = dec.f64();
  slot.work_max_share = dec.f64();
  slot.work_total_anti = dec.f64();
  slot.work_jobs_anti = dec.f64();
  slot.work_max_share_anti = dec.f64();
  return slot;
}

std::vector<std::uint8_t> encode_result(const ResultMsg& msg) {
  Encoder enc;
  enc.u32(msg.point);
  enc.u32(msg.replica);
  encode_slot(enc, msg.slot);
  return enc.bytes();
}

ResultMsg decode_result(const std::vector<std::uint8_t>& payload) {
  Decoder dec(payload);
  ResultMsg msg;
  msg.point = dec.u32();
  msg.replica = dec.u32();
  msg.slot = decode_slot(dec);
  dec.expect_done();
  return msg;
}

}  // namespace coopcr::dist
