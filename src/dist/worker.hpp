// coopcr/dist/worker.hpp
//
// The worker half of the distributed sweep: a single process that serves
// (grid point × replica) work units over the dist/wire.hpp pull protocol.
//
// A worker is spawned by DistSweepRunner either as a fork of the
// coordinator (the spec is inherited) or via fork+exec of a driver binary
// that rebuilds the same spec from its own command line (coopcr_sweep
// --worker). Either way the worker expands the grid itself, announces the
// resulting spec digest in its kHello, and then loops: read kUnit, run the
// replica with MonteCarloCampaign::run_replica_task, ship the finished
// slot back as kResult. The coordinator refuses a digest that does not
// match its own grid, so an exec'd worker can never silently compute a
// different experiment.

#pragma once

#include <vector>

#include "exp/experiment.hpp"

namespace coopcr::dist {

/// Deterministic fault hooks a worker applies to itself, carried either
/// in-memory (fork mode) or via --kill-after / --stall flags (exec mode).
struct WorkerDirectives {
  /// > 0: raise(SIGKILL) after completing this many units *without sending
  /// the last result* — the "worker killed mid-unit" hook used by the
  /// kill-resume tests and the CI smoke job.
  int kill_after = 0;

  /// Sleep `ms` milliseconds *before* sending result number
  /// `before_result` (1-based) — long enough sleeps trip the coordinator's
  /// heartbeat deadline (DistOptions::heartbeat_ms).
  struct Stall {
    int before_result = 0;
    int ms = 0;
  };
  std::vector<Stall> stalls;
};

/// Serve work units for `spec` on the given pipe fds until kShutdown or
/// EOF, applying `directives` at their trigger points. Returns normally on
/// shutdown; throws coopcr::Error on protocol violations.
void worker_serve(const exp::ExperimentSpec& spec, int in_fd, int out_fd,
                  const WorkerDirectives& directives);

/// Directive-free convenience overload (kill_after keeps its historical
/// meaning — see WorkerDirectives::kill_after).
void worker_serve(const exp::ExperimentSpec& spec, int in_fd, int out_fd,
                  int kill_after = 0);

}  // namespace coopcr::dist
