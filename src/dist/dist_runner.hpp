// coopcr/dist/dist_runner.hpp
//
// Multi-process sweep execution behind the exp::SweepExecutor interface:
// the coordinator half of the dist/ subsystem.
//
// DistSweepRunner expands an ExperimentSpec exactly like SweepRunner, but
// instead of scheduling (grid point × replica) tasks on a thread pool it
// shards them across a fleet of worker *processes* (fork of the current
// process by default, or fork+exec of a driver command) that pull units
// over the dist/wire.hpp protocol — pipes or a socketpair, see
// dist/transport.hpp. Dynamic pull is built-in work stealing: a fast
// worker simply asks for more. Completed units are appended to a
// crash-safe campaign journal (dist/journal.hpp), so a SIGKILLed sweep
// resumes by replaying the journal and dispatching only the missing units.
//
// Determinism contract, extending the thread-invariance guarantee to
// processes and crashes: every unit writes a preassigned
// MonteCarloCampaign slot whose metrics are finished doubles, slots cross
// the wire and the journal bit-exactly, and reduction folds slots in
// (point, replica) order after all units complete. Reports are therefore
// byte-identical (CSV and JSON) across 1 thread-pool run, any shard count,
// any kill/respawn/resize history, and any resume point — pinned by
// tests/dist/test_dist_runner.cpp and universally quantified over
// scripted fault schedules by tests/dist/test_fault_soak.cpp.
//
// Fault model (docs/ARCHITECTURE.md "Failure model of the campaign
// engine"): a worker that dies mid-unit has its in-flight unit re-queued;
// with a respawn budget (max_respawns) the coordinator also replaces the
// casualty to keep the fleet at strength. A worker silent past
// heartbeat_ms with a unit in flight is presumed hung and killed (then
// respawned within budget). The fleet grows or shrinks mid-campaign via
// resize_schedule, a scripted FaultPlan resize, or SIGUSR1/SIGUSR2. The
// sweep only fails once no workers remain and the respawn budget is
// spent — and then the journal already holds every completed unit.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/fault_injection.hpp"
#include "dist/transport.hpp"
#include "exp/executor.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"

namespace coopcr::dist {

/// Execution options for a distributed sweep.
struct DistOptions {
  /// Worker process count. COOPCR_SHARDS is the conventional env knob
  /// (cli/coopcr_sweep.cpp); at most one worker per pending unit is
  /// actually spawned.
  int shards = 2;

  /// Campaign journal path; empty disables journaling (the sweep is then
  /// not resumable). A fresh run refuses to overwrite an existing journal;
  /// set `resume` to continue it instead.
  std::string journal;

  /// Replay `journal` before dispatching: completed units are installed
  /// from the journal and only the missing ones run. The journal header
  /// must match this spec's digest, dimensions and code version.
  bool resume = false;

  /// Worker launch command (fork+exec). Empty forks the current process —
  /// the worker inherits the spec, which is why specs never need
  /// serialising. When set, the command must start a process that rebuilds
  /// the same spec and calls worker_serve on kWorkerInFd/kWorkerOutFd
  /// (coopcr_sweep --worker does); the coordinator verifies the worker's
  /// digest before dispatching. Fault directives ride along as
  /// "--kill-after <n>" / "--stall <n>:<ms>" flags.
  std::vector<std::string> worker_command;

  /// Test/CI hook: worker 0 SIGKILLs itself after completing this many
  /// units without reporting the last one (worker_serve's kill_after).
  int kill_worker_after = 0;

  /// Test/CI hook: abort the sweep (coopcr::Error) after this many *fresh*
  /// results have been journaled — a deterministic stand-in for killing
  /// the coordinator mid-run.
  int max_units = 0;

  /// Respawn budget: how many replacement workers may be spawned over the
  /// whole run to keep the fleet at target strength after deaths
  /// (including heartbeat kills and fault-plan casualties). 0 keeps the
  /// historical requeue-to-survivors behaviour.
  int max_respawns = 0;

  /// > 0: a worker with a unit in flight that has been silent this many
  /// milliseconds is presumed hung, SIGKILLed, and its unit re-queued
  /// (respawning within budget). 0 disables the deadline.
  int heartbeat_ms = 0;

  /// How worker channels are built — see dist/transport.hpp. The wire
  /// bytes and the results are identical across transports.
  TransportKind transport = TransportKind::kPipe;

  /// Scripted elastic resharding: once entry.after_units fresh results
  /// have landed, grow or shrink the fleet to entry.shards. Shrinking
  /// drains busy workers (their in-flight unit completes first); growing
  /// spawns immediately. SIGUSR1/SIGUSR2 adjust the fleet by ±1 at run
  /// time on top of this schedule.
  std::vector<ResizePoint> resize_schedule;

  /// Scripted fault injection (see dist/fault_injection.hpp). The hook
  /// seam is always compiled in and inert when the plan is null or empty.
  /// Held by shared_ptr so fired single-shot actions stay fired across a
  /// resume retry loop — the soak's core trick.
  std::shared_ptr<FaultPlan> fault_plan;
};

class DistSweepRunner final : public exp::SweepExecutor {
 public:
  explicit DistSweepRunner(DistOptions options);

  std::string backend_name() const override { return "dist"; }

  /// Called after each grid point's report is reduced, in grid order —
  /// same contract as exp::SweepRunner::on_point. run_batch stays
  /// unsupported (supports_run_batch() is false): adaptive rounds need the
  /// journal-aware extend the coordinator does not implement yet.
  DistSweepRunner& on_point(PointCallback callback) override;

  /// Expand `spec` and run the full grid across the worker fleet. Throws
  /// coopcr::Error on journal/digest mismatches, when every worker died
  /// with units outstanding and no respawn budget remains, or when the
  /// spec requests keep_results (full SimulationResults never cross the
  /// process boundary).
  exp::ExperimentReport run(const exp::ExperimentSpec& spec) override;

 private:
  DistOptions options_;
  PointCallback on_point_;
};

}  // namespace coopcr::dist
