// coopcr/dist/dist_runner.hpp
//
// Multi-process sweep execution behind the exp::SweepExecutor interface:
// the coordinator half of the dist/ subsystem.
//
// DistSweepRunner expands an ExperimentSpec exactly like SweepRunner, but
// instead of scheduling (grid point × replica) tasks on a thread pool it
// shards them across a fleet of worker *processes* (fork of the current
// process by default, or fork+exec of a driver command) that pull units
// over the dist/wire.hpp pipe protocol. Dynamic pull is built-in work
// stealing: a fast worker simply asks for more. Completed units are
// appended to a crash-safe campaign journal (dist/journal.hpp), so a
// SIGKILLed sweep resumes by replaying the journal and dispatching only the
// missing units.
//
// Determinism contract, extending the thread-invariance guarantee to
// processes and crashes: every unit writes a preassigned
// MonteCarloCampaign slot whose metrics are finished doubles, slots cross
// the wire and the journal bit-exactly, and reduction folds slots in
// (point, replica) order after all units complete. Reports are therefore
// byte-identical (CSV and JSON) across 1 thread-pool run, any shard count,
// and any kill/resume history — pinned by tests/dist/test_dist_runner.cpp.
//
// Fault model: a worker that dies mid-unit has its in-flight unit re-queued
// to the surviving workers; the sweep only fails once *no* workers remain,
// and then the journal already holds every completed unit. Workers are
// processes, so a crash (or a SIGKILL from the CI smoke job) cannot corrupt
// the coordinator's state.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"

namespace coopcr::dist {

/// Execution options for a distributed sweep.
struct DistOptions {
  /// Worker process count. COOPCR_SHARDS is the conventional env knob
  /// (cli/coopcr_sweep.cpp); at most one worker per pending unit is
  /// actually spawned.
  int shards = 2;

  /// Campaign journal path; empty disables journaling (the sweep is then
  /// not resumable). A fresh run refuses to overwrite an existing journal;
  /// set `resume` to continue it instead.
  std::string journal;

  /// Replay `journal` before dispatching: completed units are installed
  /// from the journal and only the missing ones run. The journal header
  /// must match this spec's digest, dimensions and code version.
  bool resume = false;

  /// Worker launch command (fork+exec). Empty forks the current process —
  /// the worker inherits the spec, which is why specs never need
  /// serialising. When set, the command must start a process that rebuilds
  /// the same spec and calls worker_serve on kWorkerInFd/kWorkerOutFd
  /// (coopcr_sweep --worker does); the coordinator verifies the worker's
  /// digest before dispatching. With kill_worker_after, "--kill-after <n>"
  /// is appended to worker 0's command.
  std::vector<std::string> worker_command;

  /// Test/CI hook: worker 0 SIGKILLs itself after completing this many
  /// units without reporting the last one (worker_serve's kill_after).
  int kill_worker_after = 0;

  /// Test/CI hook: abort the sweep (coopcr::Error) after this many *fresh*
  /// results have been journaled — a deterministic stand-in for killing
  /// the coordinator mid-run.
  int max_units = 0;
};

class DistSweepRunner final : public exp::SweepExecutor {
 public:
  explicit DistSweepRunner(DistOptions options);

  std::string backend_name() const override { return "dist"; }

  /// Called after each grid point's report is reduced, in grid order —
  /// same contract as exp::SweepRunner::on_point. run_batch stays
  /// unsupported (supports_run_batch() is false): adaptive rounds need the
  /// journal-aware extend the coordinator does not implement yet.
  DistSweepRunner& on_point(PointCallback callback) override;

  /// Expand `spec` and run the full grid across the worker fleet. Throws
  /// coopcr::Error on journal/digest mismatches, when every worker died
  /// with units outstanding, or when the spec requests keep_results (full
  /// SimulationResults never cross the process boundary).
  exp::ExperimentReport run(const exp::ExperimentSpec& spec) override;

 private:
  DistOptions options_;
  PointCallback on_point_;
};

}  // namespace coopcr::dist
