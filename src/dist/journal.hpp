// coopcr/dist/journal.hpp
//
// Crash-safe campaign journal: the durable half of kill-resume recovery.
//
// A journal is an append-only file of completed (grid point × replica) work
// units. The coordinator appends a record — the unit's full-precision
// ReplicaSlot, serialised with the wire encoding — as each result arrives
// and fdatasyncs it, so a SIGKILLed sweep can resume by replaying the
// journal and dispatching only the missing units. Replayed slots are the
// same IEEE-754 bit patterns the workers produced, which is why a resumed
// report is byte-identical to an uninterrupted run.
//
// Layout (all integers little-endian):
//
//   header   magic "COOPCRJ1" | u32 len | u64 fnv1a(payload) | payload
//            payload = format version, spec digest, code version string,
//                      grid points, replicas per point, strategy count
//   record*  u32 len | u64 fnv1a(payload) | payload
//            payload = u32 point, u32 replica, ReplicaSlot (wire encoding)
//
// Format version 2 (slot layout v2): each record's ReplicaSlot additionally
// carries the antithetic partner's own baseline denominators (useful work +
// energy — the partner simulates its own mirrored workload), the partner
// tuples (u32 count, 0 for unpaired campaigns, + the same 8-double tuples)
// and two control-variate predictor doubles (primal + partner), matching
// wire kProtocolVersion 2. Under antithetic pairing the
// record's `replica` field holds the *task* index (< replicas / 2); the
// spec digest folds the antithetic/control-variate options in, so a v2
// journal can never be replayed into a campaign with a different pairing.
// Version-1 journals refuse to resume (format_version mismatch).
//
// Format version 3 (slot layout v3, sequential stopping): record payloads
// now lead with a u16 record kind. Kind 1 (unit) is the v2 payload — u32
// point, u32 replica, ReplicaSlot (which gained the six workload-feature
// doubles of wire kProtocolVersion 3). Kind 2 (round) marks a sequential-
// stopping round boundary: the coordinator appends one *before* dispatching
// an extend round, recording the new per-point replica counts, so a resume
// that lands mid-round rebuilds exactly the campaign sizes the snapshots
// had decided — unit records past the round record address replicas the
// header's initial count does not cover, and are validated against the
// running per-point counts instead. The spec digest folds the sequential-
// stopping and contrast/stratification options in, so a journal can never
// be replayed under a different stopping rule. v1/v2 journals refuse to
// resume (format_version mismatch).
//
// Torn-write discipline: every record is length-prefixed and checksummed.
// A record cut short by a crash — or whose checksum fails at the *end* of
// the file — is a torn tail: it is dropped at replay, the file is
// truncated back to the last good record on reopen, and the affected units
// simply re-run. A checksum-failed record that is complete and has further
// data after it cannot be a torn append: that is silent mid-file
// corruption, and replay refuses it loudly, naming the byte offset —
// resuming past it would drop good records. The header binds the spec
// digest (dist/journal.cpp spec_digest) and the code version, so a journal
// from a different grid — or a different build of the simulator — refuses
// to resume instead of silently mixing results.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/monte_carlo.hpp"
#include "exp/experiment.hpp"

namespace coopcr::dist {

/// Identifies the simulator build a journal was written by. Bump on any
/// change that can alter simulation results; resuming across versions is
/// refused.
inline constexpr const char* kCodeVersion = "coopcr-7";

/// Journal file format version (layout changes only). v2: slot layout
/// gained the variance-reduction fields; v3: typed records (unit + round
/// boundary) and the slot workload features (see the header comment).
inline constexpr std::uint32_t kJournalFormatVersion = 3;

/// FNV-1a 64-bit over `data` (checksums and the spec digest).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

/// Order- and content-sensitive digest of a materialised experiment:
/// spec name, replica count, strategy names, every axis point (name, value
/// bit pattern, label) and every grid point's scenario seed. Two sweeps
/// with the same digest dispatch the same work units with the same RNG
/// streams; anything else must not share a journal.
std::uint64_t spec_digest(const exp::ExperimentSpec& spec,
                          const std::vector<exp::GridPoint>& points);

/// Identity block bound into the journal header.
struct JournalHeader {
  std::uint32_t format_version = kJournalFormatVersion;
  std::uint64_t spec_digest = 0;
  std::string code_version = kCodeVersion;
  std::uint32_t points = 0;    ///< grid points
  std::uint32_t replicas = 0;  ///< replicas per point
  std::uint32_t strategies = 0;
};

/// One durable journal record: a completed work unit (kUnit) or a
/// sequential-stopping round boundary (kRound).
struct JournalRecord {
  enum class Kind : std::uint16_t {
    kUnit = 1,   ///< point/replica/slot hold a completed unit
    kRound = 2,  ///< round/round_replicas hold an extend-round boundary
  };
  Kind kind = Kind::kUnit;

  // kUnit fields.
  std::uint32_t point = 0;
  std::uint32_t replica = 0;
  ReplicaSlot slot;

  // kRound fields: the 1-based extend-round index and the new per-point
  // replica counts the round grows each campaign to (appended *before* the
  // round's units dispatch, so a mid-round crash resumes into the right
  // campaign sizes).
  std::uint32_t round = 0;
  std::vector<std::uint32_t> round_replicas;
};

/// Result of replaying a journal file.
struct JournalReplay {
  JournalHeader header;
  std::vector<JournalRecord> records;  ///< good records, in append order
  std::uint64_t valid_bytes = 0;  ///< offset just past the last good record
  bool dropped_tail = false;      ///< a torn/corrupt tail was discarded
};

/// Replay `path`, validating the header against `expected` (digest, code
/// version, dimensions). Throws coopcr::Error when the file is missing,
/// the header is unreadable, or any identity field mismatches — a journal
/// from a different grid must refuse to resume. A torn or corrupt *record*
/// tail is not an error: parsing stops at the last good record and
/// dropped_tail is set (those units re-run).
JournalReplay replay_journal(const std::string& path,
                             const JournalHeader& expected);

/// Appending journal writer over a raw POSIX fd; every record is flushed
/// and fdatasynced before append_record returns, so a completed unit is
/// durable the moment the coordinator counts it.
class JournalWriter {
 public:
  /// Create a fresh journal at `path` (must not exist) and write the
  /// header.
  static JournalWriter create(const std::string& path,
                              const JournalHeader& header);

  /// Open an existing journal for appending after a replay, truncating any
  /// torn tail back to `valid_bytes` first.
  static JournalWriter append_after(const std::string& path,
                                    std::uint64_t valid_bytes);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&&) = delete;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Append + fdatasync one completed unit.
  void append_record(const JournalRecord& record);

  void close();

  /// Underlying fd — forked workers close their inherited copy.
  int fd() const { return fd_; }

 private:
  explicit JournalWriter(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace coopcr::dist
