// coopcr/dist/wire.hpp
//
// Length-prefixed pipe wire protocol between the sweep coordinator and its
// worker processes.
//
// Every message is one frame: a 4-byte little-endian payload length, a
// 2-byte message type, then the payload. Payload scalars are fixed-width
// little-endian; doubles travel as their IEEE-754 bit pattern, so a
// ReplicaSlot crosses the process boundary bit-exactly — the foundation of
// the dist layer's process- and resume-invariance guarantee.
//
// The conversation is a pure pull protocol (dynamic self-scheduling, which
// is work stealing for free):
//
//   worker → coordinator   kHello   {protocol version, spec digest}
//   coordinator → worker   kUnit    {grid point, replica}
//   worker → coordinator   kResult  {grid point, replica, ReplicaSlot}
//   coordinator → worker   kShutdown
//
// The digest in kHello lets the coordinator refuse a worker that rebuilt a
// *different* grid (exec-mode workers reconstruct the spec from their own
// command line). The same encoding helpers serialise journal records
// (dist/journal.hpp), so wire and disk formats cannot drift apart.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/monte_carlo.hpp"

namespace coopcr::dist {

/// Bumped on any incompatible change to the frame or payload layout.
/// v2: slot layout gained the variance-reduction fields (antithetic partner
/// tuples + control-variate predictors). v3: slot layout gained the six
/// realised workload-feature doubles post-stratification bins on — see
/// encode_slot.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// Upper bound on a frame payload; anything larger is a corrupt stream, not
/// a real message (the largest real payload is a kResult slot: tens of
/// doubles).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Fixed descriptor numbers an exec-mode worker serves on (the coordinator
/// dup2s its pipe ends there before exec).
inline constexpr int kWorkerInFd = 3;
inline constexpr int kWorkerOutFd = 4;

enum class MsgType : std::uint16_t {
  kHello = 1,
  kUnit = 2,
  kResult = 3,
  kShutdown = 4,
};

/// Append-only little-endian payload builder.
class Encoder {
 public:
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern — bit-exact round trip.
  void f64(double v);
  /// u32 length + raw bytes.
  void str(const std::string& s);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader; throws coopcr::Error on
/// overrun or (via done()) trailing garbage.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& payload)
      : Decoder(payload.data(), payload.size()) {}

  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  /// Throws unless the payload was consumed exactly.
  void expect_done() const;

 private:
  const std::uint8_t* take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kShutdown;
  std::vector<std::uint8_t> payload;
};

/// Write all of `frame` to `fd` (retrying on EINTR / short writes). Throws
/// coopcr::Error on any write failure, including EPIPE from a dead peer.
void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload);

/// Blocking read of one frame from `fd`. Returns nullopt on clean EOF at a
/// frame boundary; throws coopcr::Error on mid-frame EOF, oversized frames
/// or read errors. (The coordinator uses FrameBuffer instead — this is the
/// worker-side loop, one frame at a time.)
std::optional<Frame> read_frame(int fd);

/// Incremental frame parser for the coordinator's poll loop: feed whatever
/// bytes arrived, pop complete frames as they materialise.
class FrameBuffer {
 public:
  /// Append raw bytes from a read().
  void feed(const std::uint8_t* data, std::size_t n);

  /// Pop the next complete frame, if one is buffered. Throws coopcr::Error
  /// on an oversized length prefix.
  std::optional<Frame> next();

  /// True when a partial frame is pending (mid-frame EOF detector).
  bool has_partial() const { return !buf_.empty(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// --- typed messages ---------------------------------------------------------

struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint64_t spec_digest = 0;
};

struct UnitMsg {
  std::uint32_t point = 0;
  std::uint32_t replica = 0;
};

struct ResultMsg {
  std::uint32_t point = 0;
  std::uint32_t replica = 0;
  ReplicaSlot slot;
};

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg);
HelloMsg decode_hello(const std::vector<std::uint8_t>& payload);

/// Coordinator-side admission check: throws coopcr::Error when the hello
/// announces a different protocol version or a different spec digest —
/// a version-skewed or wrong-grid worker must never receive units.
void validate_hello(const HelloMsg& hello, std::uint64_t expected_digest);

std::vector<std::uint8_t> encode_unit(const UnitMsg& msg);
UnitMsg decode_unit(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_result(const ResultMsg& msg);
ResultMsg decode_result(const std::vector<std::uint8_t>& payload);

/// Slot (de)serialisation shared by kResult frames and journal records.
void encode_slot(Encoder& enc, const ReplicaSlot& slot);
ReplicaSlot decode_slot(Decoder& dec);

}  // namespace coopcr::dist
