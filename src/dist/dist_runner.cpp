#include "dist/dist_runner.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <utility>

#include "dist/journal.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "util/error.hpp"

namespace coopcr::dist {

namespace {

/// Coordinator-side view of one worker process.
struct Worker {
  pid_t pid = -1;
  int to_fd = -1;    ///< coordinator → worker (kUnit / kShutdown)
  int from_fd = -1;  ///< worker → coordinator (kHello / kResult)
  bool alive = false;
  bool hello_ok = false;           ///< digest verified, may receive units
  std::optional<UnitMsg> inflight;  ///< dispatched, result not yet seen
  FrameBuffer buffer;
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void reap(Worker& w) {
  if (w.pid > 0) {
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
  }
  w.alive = false;
  close_fd(w.to_fd);
  close_fd(w.from_fd);
}

/// Kills and reaps every still-live worker on scope exit, so an exception
/// (digest mismatch, max_units abort, journal error) never leaks processes
/// or pipe fds. A graceful shutdown reaps workers first, making this a
/// no-op.
class FleetGuard {
 public:
  explicit FleetGuard(std::vector<Worker>& workers) : workers_(workers) {}
  ~FleetGuard() {
    for (Worker& w : workers_) {
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
      reap(w);
    }
  }

 private:
  std::vector<Worker>& workers_;
};

/// The worker writes into a pipe whose read end the coordinator may have
/// closed after deciding the worker is dead; that must surface as an error
/// return, not a process-killing SIGPIPE.
void ignore_sigpipe() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

/// Fork a worker that inherits `spec` in memory. `extra_close` lists
/// coordinator-side fds (the journal, other workers' pipe ends) the child
/// must not hold open — a forked child keeping a dead sibling's pipe alive
/// would mask its EOF.
Worker spawn_fork(const exp::ExperimentSpec& spec, int kill_after,
                  const std::vector<int>& extra_close) {
  int to_child[2];
  int from_child[2];
  COOPCR_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
               std::string("pipe failed: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  COOPCR_CHECK(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::close(to_child[1]);
    ::close(from_child[0]);
    for (int fd : extra_close) {
      if (fd >= 0) ::close(fd);
    }
    try {
      worker_serve(spec, to_child[0], from_child[1], kill_after);
      ::_exit(0);
    } catch (const std::exception& e) {
      // _exit (not exit): the child shares the coordinator's memory image
      // and must not run its atexit handlers or flush its stdio copies.
      const std::string msg =
          std::string("coopcr worker failed: ") + e.what() + "\n";
      (void)!::write(STDERR_FILENO, msg.data(), msg.size());
      ::_exit(1);
    } catch (...) {
      ::_exit(1);
    }
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Worker w;
  w.pid = pid;
  w.to_fd = to_child[1];
  w.from_fd = from_child[0];
  w.alive = true;
  return w;
}

/// Fork+exec a worker command; the child's pipe ends land on the fixed
/// kWorkerInFd/kWorkerOutFd descriptors.
Worker spawn_exec(const std::vector<std::string>& command) {
  COOPCR_CHECK(!command.empty(), "empty worker command");
  int to_child[2];
  int from_child[2];
  COOPCR_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
               std::string("pipe failed: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  COOPCR_CHECK(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::close(to_child[1]);
    ::close(from_child[0]);
    // Move the child's ends off the target descriptors before landing them
    // there, in case a pipe fd already equals kWorkerInFd/kWorkerOutFd.
    int in = to_child[0];
    int out = from_child[1];
    while (in == kWorkerInFd || in == kWorkerOutFd) in = ::dup(in);
    while (out == kWorkerInFd || out == kWorkerOutFd) out = ::dup(out);
    if (::dup2(in, kWorkerInFd) < 0 || ::dup2(out, kWorkerOutFd) < 0) {
      ::_exit(127);
    }
    std::vector<char*> argv;
    argv.reserve(command.size() + 1);
    for (const std::string& arg : command) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    const std::string msg = std::string("coopcr worker exec failed: ") +
                            command[0] + ": " + std::strerror(errno) + "\n";
    (void)!::write(STDERR_FILENO, msg.data(), msg.size());
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Worker w;
  w.pid = pid;
  w.to_fd = to_child[1];
  w.from_fd = from_child[0];
  w.alive = true;
  return w;
}

}  // namespace

DistSweepRunner::DistSweepRunner(DistOptions options)
    : options_(std::move(options)) {
  COOPCR_CHECK(options_.shards >= 1, "dist sweep needs at least 1 shard, got " +
                                         std::to_string(options_.shards));
}

DistSweepRunner& DistSweepRunner::on_point(PointCallback callback) {
  on_point_ = std::move(callback);
  return *this;
}

exp::ExperimentReport DistSweepRunner::run(const exp::ExperimentSpec& spec) {
  COOPCR_CHECK(!spec.campaign_options().keep_results,
               "distributed sweeps cannot keep full simulation results — "
               "only reduced slots cross the process boundary");
  COOPCR_CHECK(spec.campaign_options().target_ci_width == 0.0,
               "sequential stopping (target_ci_width) is in-process only — "
               "the dist work-unit set must be fixed up front so the journal "
               "stays replayable");
  COOPCR_CHECK(options_.journal.empty() || !options_.resume ||
                   std::filesystem::exists(options_.journal),
               "cannot resume: journal does not exist: " + options_.journal);
  COOPCR_CHECK(!options_.resume || !options_.journal.empty(),
               "resume requires a journal path");
  ignore_sigpipe();

  std::vector<exp::GridPoint> points = spec.expand();
  const int replicas = spec.campaign_options().replicas;
  std::vector<std::unique_ptr<MonteCarloCampaign>> campaigns;
  campaigns.reserve(points.size());
  for (const exp::GridPoint& point : points) {
    campaigns.push_back(std::make_unique<MonteCarloCampaign>(
        point.scenario, spec.strategy_set(), spec.campaign_options()));
  }

  JournalHeader header;
  header.spec_digest = spec_digest(spec, points);
  header.points = static_cast<std::uint32_t>(points.size());
  header.replicas = static_cast<std::uint32_t>(replicas);
  header.strategies = static_cast<std::uint32_t>(spec.strategy_set().size());

  // Journal setup: replay-then-append on resume, create-fresh otherwise.
  std::optional<JournalWriter> journal;
  if (!options_.journal.empty()) {
    if (options_.resume) {
      JournalReplay replay = replay_journal(options_.journal, header);
      for (const JournalRecord& record : replay.records) {
        // Duplicate records (a unit journaled, then re-run after a crash
        // landed between append and the coordinator's bookkeeping) keep the
        // first copy; both are bit-identical by construction.
        if (campaigns[record.point]->slot_done(
                static_cast<int>(record.replica))) {
          continue;
        }
        campaigns[record.point]->install_slot(
            static_cast<int>(record.replica), record.slot);
      }
      journal.emplace(
          JournalWriter::append_after(options_.journal, replay.valid_bytes));
    } else {
      COOPCR_CHECK(!std::filesystem::exists(options_.journal),
                   "journal already exists: " + options_.journal +
                       " — pass resume to continue it, or remove it");
      journal.emplace(JournalWriter::create(options_.journal, header));
    }
  }

  // Pending units in (point, task) order; dispatch order does not matter
  // for the results (slots are preassigned), only for load balance. Under
  // antithetic pairing one unit is a replica *pair*, so the per-point unit
  // count is tasks() (replicas / 2), not header.replicas.
  std::deque<UnitMsg> pending;
  for (std::uint32_t p = 0; p < header.points; ++p) {
    const auto tasks = static_cast<std::uint32_t>(campaigns[p]->tasks());
    for (std::uint32_t t = 0; t < tasks; ++t) {
      if (!campaigns[p]->slot_done(static_cast<int>(t))) {
        pending.push_back(UnitMsg{p, t});
      }
    }
  }
  std::size_t outstanding = pending.size();
  int fresh_results = 0;

  std::vector<Worker> workers;
  FleetGuard guard(workers);

  const int shard_count = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(options_.shards),
                            outstanding));
  for (int i = 0; i < shard_count; ++i) {
    const int kill_after = (i == 0) ? options_.kill_worker_after : 0;
    if (options_.worker_command.empty()) {
      std::vector<int> extra_close;
      if (journal) extra_close.push_back(journal->fd());
      for (const Worker& w : workers) {
        extra_close.push_back(w.to_fd);
        extra_close.push_back(w.from_fd);
      }
      workers.push_back(spawn_fork(spec, kill_after, extra_close));
    } else {
      std::vector<std::string> command = options_.worker_command;
      if (kill_after > 0) {
        command.push_back("--kill-after");
        command.push_back(std::to_string(kill_after));
      }
      workers.push_back(spawn_exec(command));
    }
  }

  // Dispatch the next pending unit to `w`; on a broken pipe the worker is
  // treated as dead and the unit goes back to the front of the queue.
  auto dispatch = [&](Worker& w) {
    if (pending.empty() || !w.alive || !w.hello_ok || w.inflight) return;
    const UnitMsg unit = pending.front();
    pending.pop_front();
    try {
      write_frame(w.to_fd, MsgType::kUnit, encode_unit(unit));
      w.inflight = unit;
    } catch (const Error&) {
      pending.push_front(unit);
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
      reap(w);
    }
  };

  // A worker died: requeue its in-flight unit and hand it to an idle
  // survivor. Buffered complete frames were already drained by the caller,
  // so anything still in flight truly never completed.
  auto handle_death = [&](Worker& w) {
    reap(w);
    if (w.inflight) {
      pending.push_front(*w.inflight);
      w.inflight.reset();
    }
    for (Worker& other : workers) {
      if (pending.empty()) break;
      dispatch(other);
    }
  };

  auto handle_frame = [&](Worker& w, const Frame& frame) {
    if (frame.type == MsgType::kHello) {
      COOPCR_CHECK(!w.hello_ok, "worker sent a second kHello");
      const HelloMsg hello = decode_hello(frame.payload);
      COOPCR_CHECK(hello.protocol == kProtocolVersion,
                   "worker speaks protocol " + std::to_string(hello.protocol) +
                       ", coordinator speaks " +
                       std::to_string(kProtocolVersion));
      COOPCR_CHECK(hello.spec_digest == header.spec_digest,
                   "worker rebuilt a different experiment grid (spec digest "
                   "mismatch) — refusing to dispatch units to it");
      w.hello_ok = true;
      dispatch(w);
      return;
    }
    COOPCR_CHECK(frame.type == MsgType::kResult,
                 "coordinator expected kResult, got frame type " +
                     std::to_string(static_cast<int>(frame.type)));
    ResultMsg result = decode_result(frame.payload);
    COOPCR_CHECK(w.inflight && w.inflight->point == result.point &&
                     w.inflight->replica == result.replica,
                 "worker returned a result for a unit it was not assigned");
    w.inflight.reset();
    campaigns[result.point]->install_slot(static_cast<int>(result.replica),
                                          result.slot);
    if (journal) {
      journal->append_record(
          JournalRecord{result.point, result.replica, std::move(result.slot)});
    }
    --outstanding;
    ++fresh_results;
    COOPCR_CHECK(options_.max_units <= 0 || fresh_results < options_.max_units,
                 "sweep interrupted after " + std::to_string(fresh_results) +
                     " units (max_units) — resume from the journal");
    dispatch(w);
  };

  // Event loop: poll the worker pipes, feed per-worker frame buffers, and
  // handle whatever completes. Runs until every unit is accounted for.
  while (outstanding > 0) {
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].alive) continue;
      fds.push_back(pollfd{workers[i].from_fd, POLLIN, 0});
      owner.push_back(i);
    }
    COOPCR_CHECK(!fds.empty(),
                 "all workers died with " + std::to_string(outstanding) +
                     " units outstanding" +
                     (journal ? " — completed units are journaled, resume to "
                                "continue"
                              : ""));
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      COOPCR_CHECK(false, std::string("poll failed: ") + std::strerror(errno));
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Worker& w = workers[owner[i]];
      if (!w.alive) continue;  // reaped by an earlier handler this round
      std::uint8_t chunk[4096];
      const ssize_t n = ::read(w.from_fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        handle_death(w);
        continue;
      }
      if (n > 0) w.buffer.feed(chunk, static_cast<std::size_t>(n));
      // Drain every complete frame first: a result the worker managed to
      // send before dying must count before its death requeues anything.
      while (std::optional<Frame> frame = w.buffer.next()) {
        handle_frame(w, *frame);
      }
      if (n == 0) handle_death(w);
      if (outstanding == 0) break;
    }
  }

  // Graceful shutdown: tell survivors to exit, then reap everyone.
  for (Worker& w : workers) {
    if (!w.alive) continue;
    try {
      write_frame(w.to_fd, MsgType::kShutdown, {});
    } catch (const Error&) {
      // Already gone; reap below.
    }
    reap(w);
  }
  if (journal) journal->close();

  // Reduction and report assembly mirror exp::SweepRunner::run exactly —
  // grid order, same callback contract — which is what makes the reports
  // byte-identical across the two runners.
  exp::ExperimentReport report;
  report.name = spec.name();
  report.replicas = replicas;
  for (const auto& axis : spec.axes()) report.axis_names.push_back(axis.name);
  report.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    MonteCarloReport point_report = campaigns[p]->reduce();
    if (on_point_) on_point_(points[p], point_report);
    report.points.push_back(
        exp::PointResult{std::move(points[p]), std::move(point_report)});
  }
  return report;
}

}  // namespace coopcr::dist
