#include "dist/dist_runner.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <utility>

#include "dist/journal.hpp"
#include "dist/transport.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "exp/sweep_runner.hpp"
#include "util/error.hpp"

namespace coopcr::dist {

namespace {

/// A frame held back by a kDelayFrame fault; delivered once `rounds` poll
/// rounds have elapsed.
struct DelayedFrame {
  Frame frame;
  int rounds = 0;
};

/// Coordinator-side view of one worker process.
struct Worker {
  pid_t pid = -1;
  int to_fd = -1;    ///< coordinator → worker (kUnit / kShutdown)
  int from_fd = -1;  ///< worker → coordinator (kHello / kResult)
  bool alive = false;
  bool hello_ok = false;  ///< digest verified, may receive units
  bool draining = false;  ///< shrinking: finish the in-flight unit, then retire
  std::optional<UnitMsg> inflight;  ///< dispatched, result not yet seen
  FrameBuffer buffer;
  int frames_seen = 0;  ///< inbound frames popped (frame-fault trigger)
  std::vector<DelayedFrame> delayed;
  std::chrono::steady_clock::time_point last_heard;  ///< heartbeat clock
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void reap(Worker& w) {
  if (w.pid > 0) {
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
  }
  w.alive = false;
  // A socketpair channel aliases both directions onto one descriptor —
  // close it exactly once.
  if (w.from_fd == w.to_fd) w.from_fd = -1;
  close_fd(w.to_fd);
  close_fd(w.from_fd);
}

/// Kills and reaps every still-live worker on scope exit, so an exception
/// (digest mismatch, an injected interrupt, journal error) never leaks
/// processes or pipe fds. A graceful shutdown reaps workers first, making
/// this a no-op.
class FleetGuard {
 public:
  explicit FleetGuard(std::deque<Worker>& workers) : workers_(workers) {}
  ~FleetGuard() {
    for (Worker& w : workers_) {
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
      reap(w);
    }
  }

 private:
  std::deque<Worker>& workers_;
};

/// The worker writes into a pipe whose read end the coordinator may have
/// closed after deciding the worker is dead; that must surface as an error
/// return, not a process-killing SIGPIPE.
void ignore_sigpipe() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

// SIGUSR1 grows the fleet by one, SIGUSR2 shrinks it by one. The handlers
// only bump counters; the poll loop consumes the deltas at a safe point.
volatile std::sig_atomic_t g_grow_signals = 0;
volatile std::sig_atomic_t g_shrink_signals = 0;

void on_grow_signal(int) { g_grow_signals = g_grow_signals + 1; }
void on_shrink_signal(int) { g_shrink_signals = g_shrink_signals + 1; }

/// Installs the resize signal handlers for the duration of a run (without
/// SA_RESTART, so a signal wakes the poll loop) and restores the previous
/// dispositions on exit.
class ResizeSignalGuard {
 public:
  ResizeSignalGuard() {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    ::sigemptyset(&sa.sa_mask);
    sa.sa_handler = on_grow_signal;
    ::sigaction(SIGUSR1, &sa, &old_grow_);
    sa.sa_handler = on_shrink_signal;
    ::sigaction(SIGUSR2, &sa, &old_shrink_);
  }
  ~ResizeSignalGuard() {
    ::sigaction(SIGUSR1, &old_grow_, nullptr);
    ::sigaction(SIGUSR2, &old_shrink_, nullptr);
  }

 private:
  struct sigaction old_grow_;
  struct sigaction old_shrink_;
};

int elapsed_ms_since(std::chrono::steady_clock::time_point then) {
  const auto elapsed = std::chrono::steady_clock::now() - then;
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count());
}

}  // namespace

DistSweepRunner::DistSweepRunner(DistOptions options)
    : options_(std::move(options)) {
  COOPCR_CHECK(options_.shards >= 1, "dist sweep needs at least 1 shard, got " +
                                         std::to_string(options_.shards));
  COOPCR_CHECK(options_.max_respawns >= 0,
               "--respawn/COOPCR_RESPAWN must be >= 0, got " +
                   std::to_string(options_.max_respawns));
  COOPCR_CHECK(options_.heartbeat_ms >= 0,
               "--heartbeat-ms/COOPCR_HEARTBEAT_MS must be >= 0, got " +
                   std::to_string(options_.heartbeat_ms));
  for (const ResizePoint& point : options_.resize_schedule) {
    COOPCR_CHECK(point.shards >= 1 && point.after_units >= 0,
                 "--resize-at/COOPCR_RESIZE_AT entries need shards >= 1 and "
                 "a non-negative unit trigger");
  }
}

DistSweepRunner& DistSweepRunner::on_point(PointCallback callback) {
  on_point_ = std::move(callback);
  return *this;
}

exp::ExperimentReport DistSweepRunner::run(const exp::ExperimentSpec& spec) {
  COOPCR_CHECK(!spec.campaign_options().keep_results,
               "distributed sweeps cannot keep full simulation results — "
               "only reduced slots cross the process boundary");
  COOPCR_CHECK(options_.journal.empty() || !options_.resume ||
                   std::filesystem::exists(options_.journal),
               "cannot resume: journal does not exist: " + options_.journal);
  COOPCR_CHECK(!options_.resume || !options_.journal.empty(),
               "--resume/resume requires a journal path — set --journal or "
               "COOPCR_JOURNAL");
  // An inert reference keeps the hook sites unconditional: the seam always
  // compiles, and an absent plan simply never matches a trigger.
  FaultPlan inert_plan;
  FaultPlan& plan = options_.fault_plan ? *options_.fault_plan : inert_plan;
  COOPCR_CHECK(!plan.touches_journal() || !options_.journal.empty(),
               "--fault-plan/COOPCR_FAULT_PLAN tears or flips the journal, "
               "which needs --journal or COOPCR_JOURNAL set");
  ignore_sigpipe();

  std::vector<exp::GridPoint> points = spec.expand();
  const int replicas = spec.campaign_options().replicas;
  // Sequential stopping shares its round logic with the in-process runner:
  // the cap, the clamped round-one count and the per-round grow-or-settle
  // decision all come from exp::sequential_stopping_* helpers, so the growth
  // schedule — and therefore the reduced artifacts — cannot drift between
  // backends.
  MonteCarloOptions start_options = spec.campaign_options();
  const int replica_cap = exp::sequential_stopping_cap(start_options);
  start_options.replicas = exp::sequential_stopping_start(start_options);
  const bool adaptive = start_options.target_ci_width > 0.0;
  std::vector<std::unique_ptr<MonteCarloCampaign>> campaigns;
  campaigns.reserve(points.size());
  for (const exp::GridPoint& point : points) {
    campaigns.push_back(std::make_unique<MonteCarloCampaign>(
        point.scenario, spec.strategy_set(), start_options));
  }

  JournalHeader header;
  header.spec_digest = spec_digest(spec, points);
  header.points = static_cast<std::uint32_t>(points.size());
  header.replicas = static_cast<std::uint32_t>(start_options.replicas);
  header.strategies = static_cast<std::uint32_t>(spec.strategy_set().size());

  // Journal setup: replay-then-append on resume, create-fresh otherwise.
  // `rounds_recorded` is the highest extend-round index already journaled,
  // so a resumed run numbers its further rounds past the replayed ones.
  std::uint32_t rounds_recorded = 0;
  std::optional<JournalWriter> journal;
  if (!options_.journal.empty()) {
    if (options_.resume) {
      JournalReplay replay = replay_journal(options_.journal, header);
      for (const JournalRecord& record : replay.records) {
        if (record.kind == JournalRecord::Kind::kRound) {
          // Round records were appended *before* their round's units
          // dispatched; applying them in append order re-grows every
          // campaign to the sizes the original run's snapshots decided, so
          // later unit records land inside bounds and a mid-round resume
          // finishes exactly the round that was interrupted.
          for (std::uint32_t p = 0; p < header.points; ++p) {
            campaigns[p]->extend(static_cast<int>(record.round_replicas[p]));
          }
          rounds_recorded = record.round;
          continue;
        }
        // Duplicate records (a unit journaled, then re-run after a crash
        // landed between append and the coordinator's bookkeeping) keep the
        // first copy; both are bit-identical by construction.
        if (campaigns[record.point]->slot_done(
                static_cast<int>(record.replica))) {
          continue;
        }
        campaigns[record.point]->install_slot(
            static_cast<int>(record.replica), record.slot);
      }
      journal.emplace(
          JournalWriter::append_after(options_.journal, replay.valid_bytes));
    } else {
      COOPCR_CHECK(!std::filesystem::exists(options_.journal),
                   "journal already exists: " + options_.journal +
                       " — pass resume to continue it, or remove it");
      journal.emplace(JournalWriter::create(options_.journal, header));
    }
  }

  // Pending units in (point, task) order; dispatch order does not matter
  // for the results (slots are preassigned), only for load balance. Under
  // antithetic pairing one unit is a replica *pair*, so the per-point unit
  // count is tasks() (replicas / 2), not header.replicas. Sequential
  // stopping refills the queue at every round boundary from the grown
  // campaign sizes; slot_done is the authoritative "already ran" record, so
  // a refill can never duplicate a unit.
  std::deque<UnitMsg> pending;
  std::size_t outstanding = 0;
  auto refill_pending = [&]() {
    pending.clear();
    for (std::uint32_t p = 0; p < header.points; ++p) {
      const auto tasks = static_cast<std::uint32_t>(campaigns[p]->tasks());
      for (std::uint32_t t = 0; t < tasks; ++t) {
        if (!campaigns[p]->slot_done(static_cast<int>(t))) {
          pending.push_back(UnitMsg{p, t});
        }
      }
    }
    outstanding = pending.size();
  };
  refill_pending();
  int fresh_results = 0;

  // A deque keeps Worker references stable while respawn/resize push new
  // workers mid-round — a vector's reallocation would dangle the reference
  // the poll loop is holding.
  std::deque<Worker> workers;
  FleetGuard guard(workers);
  ResizeSignalGuard signal_guard;
  int grow_signals_seen = 0;
  int shrink_signals_seen = 0;

  int respawns_left = options_.max_respawns;
  bool kill_hook_armed = options_.kill_worker_after > 0;

  std::vector<ResizePoint> resizes = options_.resize_schedule;
  std::stable_sort(resizes.begin(), resizes.end(),
                   [](const ResizePoint& a, const ResizePoint& b) {
                     return a.after_units < b.after_units;
                   });
  std::size_t next_resize = 0;

  int target_shards = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(options_.shards), outstanding));

  auto active_count = [&]() {
    int n = 0;
    for (const Worker& w : workers) {
      if (w.alive && !w.draining) ++n;
    }
    return n;
  };
  auto idle_active_count = [&]() {
    int n = 0;
    for (const Worker& w : workers) {
      if (w.alive && !w.draining && !w.inflight) ++n;
    }
    return n;
  };

  auto spawn_one = [&]() {
    const int index = static_cast<int>(workers.size());
    WorkerDirectives directives;
    if (kill_hook_armed) {
      // The legacy kill_worker_after hook arms the first worker ever
      // spawned, exactly as before the fault plan existed.
      directives.kill_after = options_.kill_worker_after;
      kill_hook_armed = false;
    }
    for (const FaultAction& stall : plan.take_stalls(index)) {
      directives.stalls.push_back(
          WorkerDirectives::Stall{stall.after_units, stall.stall_ms});
    }
    WorkerLaunch launch;
    launch.transport = options_.transport;
    if (options_.worker_command.empty()) {
      launch.spec = &spec;
      launch.directives = directives;
      if (journal) launch.extra_close.push_back(journal->fd());
      for (const Worker& w : workers) {
        launch.extra_close.push_back(w.to_fd);
        if (w.from_fd != w.to_fd) launch.extra_close.push_back(w.from_fd);
      }
    } else {
      launch.command = options_.worker_command;
      if (directives.kill_after > 0) {
        launch.command.push_back("--kill-after");
        launch.command.push_back(std::to_string(directives.kill_after));
      }
      for (const WorkerDirectives::Stall& stall : directives.stalls) {
        launch.command.push_back("--stall");
        launch.command.push_back(std::to_string(stall.before_result) + ":" +
                                 std::to_string(stall.ms));
      }
    }
    const WorkerEndpoint endpoint = spawn_worker(launch);
    Worker w;
    w.pid = endpoint.pid;
    w.to_fd = endpoint.to_fd;
    w.from_fd = endpoint.from_fd;
    w.alive = true;
    w.last_heard = std::chrono::steady_clock::now();
    workers.push_back(std::move(w));
  };

  // Replace casualties up to the respawn budget, but never spawn a worker
  // that could not be handed a queued unit.
  auto top_up = [&]() {
    while (respawns_left > 0 && active_count() < target_shards &&
           idle_active_count() < static_cast<int>(pending.size())) {
      spawn_one();
      --respawns_left;
    }
  };

  // Graceful single-worker retirement (idle shrink target or a drained
  // worker whose last unit just landed).
  auto retire = [&](Worker& w) {
    try {
      write_frame(w.to_fd, MsgType::kShutdown, {});
    } catch (const Error&) {
      // Already gone; reap below.
    }
    reap(w);
  };

  // Dispatch the next pending unit to `w`; on a broken pipe the worker is
  // treated as dead and the unit goes back to the front of the queue.
  auto dispatch = [&](Worker& w) {
    if (pending.empty() || !w.alive || !w.hello_ok || w.inflight ||
        w.draining) {
      return;
    }
    const UnitMsg unit = pending.front();
    pending.pop_front();
    try {
      write_frame(w.to_fd, MsgType::kUnit, encode_unit(unit));
      w.inflight = unit;
      w.last_heard = std::chrono::steady_clock::now();
    } catch (const Error&) {
      pending.push_front(unit);
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
      reap(w);
    }
  };

  // A worker died: requeue its in-flight unit, top the fleet back up, and
  // hand work to whoever is idle. Buffered complete frames were already
  // drained by the caller, so anything still in flight truly never
  // completed; held-back delayed frames die with the stream that produced
  // them.
  auto handle_death = [&](Worker& w) {
    reap(w);
    w.delayed.clear();
    if (w.inflight) {
      pending.push_front(*w.inflight);
      w.inflight.reset();
    }
    top_up();
    for (Worker& other : workers) {
      if (pending.empty()) break;
      dispatch(other);
    }
  };

  // Elastic resharding: grow by spawning (capped by queued work), shrink
  // by retiring idle workers first and draining busy ones — their
  // in-flight unit completes and ships before they exit, so no work is
  // lost and the artifacts cannot change.
  auto do_resize = [&](int new_shards) {
    target_shards = std::max(1, new_shards);
    while (active_count() < target_shards &&
           idle_active_count() < static_cast<int>(pending.size())) {
      spawn_one();
    }
    for (Worker& w : workers) {
      if (active_count() <= target_shards) break;
      if (!w.alive || w.draining || w.inflight) continue;
      retire(w);
    }
    for (Worker& w : workers) {
      if (active_count() <= target_shards) break;
      if (!w.alive || w.draining) continue;
      w.draining = true;
    }
  };

  // Fire every unit-triggered fault and scheduled resize due at the
  // current fresh-result count. Journal tear/flip and interrupts abort the
  // run (FleetGuard cleans up); the journal then drives the resume.
  auto fire_unit_faults = [&]() {
    while (next_resize < resizes.size() &&
           resizes[next_resize].after_units <= fresh_results) {
      do_resize(resizes[next_resize].shards);
      ++next_resize;
    }
    for (const FaultAction& action : plan.take_due(fresh_results)) {
      switch (action.kind) {
        case FaultKind::kKillWorker: {
          if (action.worker < static_cast<int>(workers.size())) {
            Worker& target = workers[action.worker];
            // SIGKILL only — the death surfaces through the poll loop as
            // an EOF, exercising the same path a real crash takes.
            if (target.alive && target.pid > 0) {
              ::kill(target.pid, SIGKILL);
            }
          }
          break;
        }
        case FaultKind::kResize:
          do_resize(action.shards);
          break;
        case FaultKind::kTearJournal:
          if (journal) {
            append_torn_journal_tail(journal->fd(), action.tear_bytes);
          }
          COOPCR_CHECK(false, "fault injection: journal torn after " +
                                  std::to_string(fresh_results) +
                                  " units — resume from the journal");
        case FaultKind::kFlipJournalByte:
          if (journal) {
            journal->close();
            flip_journal_byte_at(options_.journal, action.offset);
          }
          COOPCR_CHECK(false, "fault injection: journal byte " +
                                  std::to_string(action.offset) +
                                  " flipped after " +
                                  std::to_string(fresh_results) + " units");
        case FaultKind::kInterrupt:
          COOPCR_CHECK(false, "sweep interrupted after " +
                                  std::to_string(fresh_results) +
                                  " units (fault plan) — resume from the "
                                  "journal");
        default:
          break;
      }
    }
  };

  auto handle_frame = [&](Worker& w, const Frame& frame) {
    if (frame.type == MsgType::kHello) {
      COOPCR_CHECK(!w.hello_ok, "worker sent a second kHello");
      validate_hello(decode_hello(frame.payload), header.spec_digest);
      w.hello_ok = true;
      dispatch(w);
      return;
    }
    COOPCR_CHECK(frame.type == MsgType::kResult,
                 "coordinator expected kResult, got frame type " +
                     std::to_string(static_cast<int>(frame.type)));
    ResultMsg result = decode_result(frame.payload);
    COOPCR_CHECK(w.inflight && w.inflight->point == result.point &&
                     w.inflight->replica == result.replica,
                 "worker returned a result for a unit it was not assigned");
    w.inflight.reset();
    campaigns[result.point]->install_slot(static_cast<int>(result.replica),
                                          result.slot);
    if (journal) {
      JournalRecord record;
      record.point = result.point;
      record.replica = result.replica;
      record.slot = std::move(result.slot);
      journal->append_record(record);
    }
    --outstanding;
    ++fresh_results;
    COOPCR_CHECK(options_.max_units <= 0 || fresh_results < options_.max_units,
                 "sweep interrupted after " + std::to_string(fresh_results) +
                     " units (max_units) — resume from the journal");
    fire_unit_faults();
    if (!w.alive) return;  // a fired fault retired or killed this worker
    if (w.draining) {
      retire(w);
      return;
    }
    dispatch(w);
  };

  for (int i = 0; i < target_shards; ++i) spawn_one();
  fire_unit_faults();  // zero-trigger actions fire before any result

  // Round loop: run the event loop until the current round's units are all
  // accounted for, then (under sequential stopping) take the shared
  // grow-or-settle decision per campaign, journal the round boundary, grow
  // the campaigns, and go again. Fixed-count sweeps take exactly one trip.
  for (;;) {
    // Event loop: poll the worker channels, feed per-worker frame buffers,
    // and handle whatever completes. Runs until every unit is accounted for.
    while (outstanding > 0) {
      // Operator resize signals accumulated since the last round.
      {
        const int grow = static_cast<int>(g_grow_signals);
        const int shrink = static_cast<int>(g_shrink_signals);
        const int delta =
            (grow - grow_signals_seen) - (shrink - shrink_signals_seen);
        grow_signals_seen = grow;
        shrink_signals_seen = shrink;
        if (delta != 0) do_resize(target_shards + delta);
      }

      // Heartbeat deadline: a worker with a unit in flight that has been
      // silent too long is presumed hung (e.g. a scripted stall) and killed;
      // its unit re-runs elsewhere to the same bits.
      if (options_.heartbeat_ms > 0) {
        for (Worker& w : workers) {
          if (!w.alive || !w.inflight) continue;
          if (elapsed_ms_since(w.last_heard) > options_.heartbeat_ms) {
            if (w.pid > 0) ::kill(w.pid, SIGKILL);
            handle_death(w);
          }
        }
      }

      // Deliver delayed frames whose hold expired.
      for (Worker& w : workers) {
        if (!w.alive || w.delayed.empty()) continue;
        std::size_t i = 0;
        while (i < w.delayed.size()) {
          if (--w.delayed[i].rounds > 0) {
            ++i;
            continue;
          }
          const Frame held = std::move(w.delayed[i].frame);
          w.delayed.erase(w.delayed.begin() + static_cast<std::ptrdiff_t>(i));
          handle_frame(w, held);
          if (!w.alive || outstanding == 0) break;
        }
        if (outstanding == 0) break;
      }
      if (outstanding == 0) break;

      top_up();

      std::vector<struct pollfd> fds;
      std::vector<std::size_t> owner;
      bool any_delayed = false;
      for (std::size_t i = 0; i < workers.size(); ++i) {
        if (!workers[i].alive) continue;
        fds.push_back(pollfd{workers[i].from_fd, POLLIN, 0});
        owner.push_back(i);
        if (!workers[i].delayed.empty()) any_delayed = true;
      }
      COOPCR_CHECK(
          !fds.empty(),
          "all workers died with " + std::to_string(outstanding) +
              " units outstanding" +
              (options_.max_respawns > 0 ? " (respawn budget exhausted)" : "") +
              (journal ? " — completed units are journaled, resume to continue"
                       : ""));

      int timeout = -1;
      if (any_delayed) {
        timeout = 1;  // held frames advance one round per poll wakeup
      } else if (options_.heartbeat_ms > 0) {
        for (const Worker& w : workers) {
          if (!w.alive || !w.inflight) continue;
          const int remaining =
              options_.heartbeat_ms - elapsed_ms_since(w.last_heard);
          const int t = std::max(1, remaining + 1);
          timeout = timeout < 0 ? t : std::min(timeout, t);
        }
      }
      const int ready = ::poll(fds.data(), fds.size(), timeout);
      if (ready < 0) {
        if (errno == EINTR) continue;
        COOPCR_CHECK(false, std::string("poll failed: ") + std::strerror(errno));
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        Worker& w = workers[owner[i]];
        if (!w.alive) continue;  // reaped by an earlier handler this round
        std::uint8_t chunk[4096];
        const ssize_t n = ::read(w.from_fd, chunk, sizeof(chunk));
        if (n < 0) {
          if (errno == EINTR) continue;
          handle_death(w);
          continue;
        }
        if (n > 0) {
          w.buffer.feed(chunk, static_cast<std::size_t>(n));
          w.last_heard = std::chrono::steady_clock::now();
        }
        // Drain every complete frame first: a result the worker managed to
        // send before dying must count before its death requeues anything.
        bool stream_cut = false;
        while (std::optional<Frame> frame = w.buffer.next()) {
          ++w.frames_seen;
          const FaultAction fault =
              plan.take_frame_fault(static_cast<int>(owner[i]), w.frames_seen);
          if (fault.fired) {
            if (fault.kind == FaultKind::kDelayFrame) {
              w.delayed.push_back(
                  DelayedFrame{std::move(*frame), fault.delay_rounds});
              continue;
            }
            // Drop or truncate: the bytes are discarded and the stream past
            // them cannot be trusted, so the worker is killed; its in-flight
            // unit re-runs (bit-identically) elsewhere.
            if (fault.kind == FaultKind::kTruncateFrame) {
              // Leave the torn remainder in the buffer, as a real
              // mid-frame cut would.
              const std::uint8_t torn[3] = {0x08, 0x00, 0x00};
              w.buffer.feed(torn, sizeof(torn));
            }
            if (w.pid > 0) ::kill(w.pid, SIGKILL);
            handle_death(w);
            stream_cut = true;
            break;
          }
          handle_frame(w, *frame);
          if (!w.alive || outstanding == 0) break;
        }
        if (stream_cut) continue;
        if (n == 0 && w.alive) handle_death(w);
        if (outstanding == 0) break;
      }
    }

    if (!adaptive) break;

    // Round boundary: every campaign's current replicas are installed, so the
    // deterministic snapshots decide — per point — whether to settle or grow.
    // The decision is exp::next_sequential_round, the very function the
    // in-process runner calls, on the very same slots; the two backends
    // therefore follow bit-identical growth schedules.
    bool any_extend = false;
    std::vector<std::uint32_t> next_counts(header.points);
    for (std::uint32_t p = 0; p < header.points; ++p) {
      const int next = exp::next_sequential_round(*campaigns[p], replica_cap);
      next_counts[p] = static_cast<std::uint32_t>(
          next > 0 ? next : campaigns[p]->replicas());
      if (next > 0) any_extend = true;
    }
    if (!any_extend) break;

    // The round record goes to the journal *before* any extend-round unit can
    // complete: a crash anywhere inside the round replays the record first
    // and resumes with the grown campaign sizes the snapshots decided.
    ++rounds_recorded;
    if (journal) {
      JournalRecord record;
      record.kind = JournalRecord::Kind::kRound;
      record.round = rounds_recorded;
      record.round_replicas = next_counts;
      journal->append_record(record);
    }
    for (std::uint32_t p = 0; p < header.points; ++p) {
      campaigns[p]->extend(static_cast<int>(next_counts[p]));
    }
    refill_pending();

    // Wake the fleet: regrow toward the configured shard count if the new
    // round brought more units than live workers (a resume may have started
    // with a near-empty queue and a correspondingly small fleet), then hand
    // units to everyone idle. Fresh workers dispatch on their kHello.
    const int round_target = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(options_.shards), pending.size()));
    if (round_target > target_shards) target_shards = round_target;
    while (active_count() < target_shards &&
           idle_active_count() < static_cast<int>(pending.size())) {
      spawn_one();
    }
    for (Worker& w : workers) {
      if (pending.empty()) break;
      dispatch(w);
    }
  }

  // Graceful shutdown: tell survivors to exit, then reap everyone.
  for (Worker& w : workers) {
    if (!w.alive) continue;
    try {
      write_frame(w.to_fd, MsgType::kShutdown, {});
    } catch (const Error&) {
      // Already gone; reap below.
    }
    reap(w);
  }
  if (journal) journal->close();

  // Reduction and report assembly mirror exp::SweepRunner::run exactly —
  // grid order, same callback contract — which is what makes the reports
  // byte-identical across the two runners.
  exp::ExperimentReport report;
  report.name = spec.name();
  report.replicas = replicas;
  for (const auto& axis : spec.axes()) report.axis_names.push_back(axis.name);
  report.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    MonteCarloReport point_report = campaigns[p]->reduce();
    if (on_point_) on_point_(points[p], point_report);
    report.points.push_back(
        exp::PointResult{std::move(points[p]), std::move(point_report)});
  }
  return report;
}

}  // namespace coopcr::dist
