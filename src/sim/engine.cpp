#include "sim/engine.hpp"

#include "util/error.hpp"

namespace coopcr::sim {

EventId Engine::at(Time t, EventFn fn) {
  return queue_.schedule(t, std::move(fn));
}

EventId Engine::after(Time delay, EventFn fn) {
  COOPCR_CHECK(delay >= 0.0, "negative event delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) { return queue_.cancel(id); }

void Engine::advance_to(Time t) {
  COOPCR_ASSERT(t >= now_, "time must be monotone");
  now_ = t;
  queue_.set_now(t);
}

std::uint64_t Engine::run(Time horizon) {
  stop_requested_ = false;
  const bool bounded = horizon != kTimeNever;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (bounded && queue_.next_time() > horizon) break;
    auto fired = queue_.pop();
    advance_to(fired.time);
    fired.fn();
    ++n;
    ++executed_;
  }
  if (queue_.empty() && horizon != kTimeNever && now_ < horizon) {
    // Drained before the horizon: advance the clock so that now() reflects
    // the simulated span the caller asked for.
    advance_to(horizon);
  }
  return n;
}

std::uint64_t Engine::run_steps(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !queue_.empty() && !stop_requested_) {
    auto fired = queue_.pop();
    advance_to(fired.time);
    fired.fn();
    ++n;
    ++executed_;
  }
  return n;
}

}  // namespace coopcr::sim
