// coopcr/sim/inline_fn.hpp
//
// Small-buffer, move-only callable — the engine's replacement for
// std::function on the event hot path.
//
// Every event the simulator schedules binds a member function to a handful
// of scalars ([this], [this, jid], [this, jid, target], ...), so the
// capture state is a few dozen bytes. std::function heap-allocates such
// captures (libstdc++'s inline buffer is two words) and is copyable, which
// forces every stored callback to be copy-constructible. InlineFunction
// stores captures up to `Capacity` bytes inline — zero allocation on the
// steady-state path — and is move-only, so completion callbacks are moved,
// never duplicated, through SharedChannel / IoSubsystem plumbing. Callables
// larger than `Capacity` (or with throwing moves) fall back to one heap box,
// preserving drop-in compatibility for tests and user code.

#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace coopcr::sim {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;  // undefined — only the R(Args...) partial below exists

/// Move-only callable with `Capacity` bytes of inline storage.
template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Wrap any callable invocable as R(Args...). Small nothrow-movable
  /// callables live inline; everything else goes into one heap box.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(runtime/explicit)
    using Decayed = std::decay_t<F>;
    using Ops = std::conditional_t<fits_inline<Decayed>(), InlineOps<Decayed>,
                                   BoxedOps<Decayed>>;
    Ops::construct(storage_, std::forward<F>(fn));
    invoke_ = &Ops::invoke;
    manage_ = &Ops::manage;
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    destroy();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { destroy(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  /// Max capture size stored without allocation (for tests/docs).
  static constexpr std::size_t inline_capacity() { return Capacity; }

 private:
  enum class Op { kRelocate, kDestroy };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= Capacity &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  struct InlineOps {
    template <typename G>
    static void construct(void* dst, G&& fn) {
      ::new (dst) F(std::forward<G>(fn));
    }
    static R invoke(void* self, Args&&... args) {
      return (*static_cast<F*>(self))(std::forward<Args>(args)...);
    }
    static void manage(Op op, void* self, void* other) noexcept {
      F* fn = static_cast<F*>(self);
      if (op == Op::kRelocate) ::new (other) F(std::move(*fn));
      fn->~F();
    }
  };

  template <typename F>
  struct BoxedOps {
    template <typename G>
    static void construct(void* dst, G&& fn) {
      *static_cast<F**>(dst) = new F(std::forward<G>(fn));
    }
    static R invoke(void* self, Args&&... args) {
      return (**static_cast<F**>(self))(std::forward<Args>(args)...);
    }
    static void manage(Op op, void* self, void* other) noexcept {
      F** box = static_cast<F**>(self);
      if (op == Op::kRelocate) {
        *static_cast<F**>(other) = *box;  // steal the box pointer
      } else {
        delete *box;
      }
    }
  };

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(Op::kRelocate, other.storage_, storage_);
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*manage_)(Op, void*, void*) noexcept = nullptr;
};

}  // namespace coopcr::sim
