// coopcr/sim/engine.hpp
//
// Discrete-event simulation engine: the run loop around EventQueue.
//
// The engine owns the clock. Components schedule callbacks; the engine pops
// them in (time, sequence) order, advances `now()`, and invokes them. The
// loop stops when the queue drains, when a configured horizon is reached, or
// when a component calls `stop()`.

#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace coopcr::sim {

/// Discrete-event engine.
class Engine {
 public:
  Engine() = default;

  /// Current simulation time (seconds).
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now()).
  EventId at(Time t, EventFn fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId after(Time delay, EventFn fn);

  /// Cancel a scheduled event; no-op if already fired/cancelled.
  bool cancel(EventId id);

  /// Run until the queue empties or `horizon` is passed. Events stamped
  /// exactly at the horizon still fire; later ones stay in the queue.
  /// Returns the number of events executed by this call.
  std::uint64_t run(Time horizon = kTimeNever);

  /// Execute at most `max_events` events (debug/test stepping helper).
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Request that run() return after the current event completes.
  void stop() { stop_requested_ = true; }

  /// True when no live events remain.
  bool idle() const { return queue_.empty(); }

  /// Timestamp of the next pending event; kTimeNever when idle.
  Time next_event_time() const { return queue_.next_time(); }

  /// Total number of events executed over the engine's lifetime.
  std::uint64_t events_executed() const { return executed_; }

  /// Reset to a pristine state (t = 0, no events, zeroed counters) while
  /// keeping the queue's slab/heap capacity. A reset engine behaves
  /// bit-identically to a freshly constructed one — the basis of
  /// per-replica engine reuse (core/simulation.hpp SimWorkspace).
  void reset() {
    queue_.clear();
    now_ = 0.0;
    executed_ = 0;
    stop_requested_ = false;
  }

  /// Direct queue access for advanced components/tests.
  EventQueue& queue() { return queue_; }

 private:
  void advance_to(Time t);

  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace coopcr::sim
