// coopcr/sim/time.hpp
//
// Simulated time. One `Time` unit is one second (matching the paper's
// formulas, where periods, checkpoint commit times and MTBFs are all in
// seconds). Doubles carry sub-microsecond resolution over multi-month
// horizons, which is far finer than any modelled quantity.

#pragma once

#include <limits>
#include <string>

namespace coopcr::sim {

/// Simulated time in seconds since the start of the run.
using Time = double;

/// Sentinel "never" timestamp.
inline constexpr Time kTimeNever = std::numeric_limits<Time>::infinity();

/// Comparison slack for "same instant" decisions. The simulator itself never
/// compares with epsilon (event ordering is exact via sequence numbers); this
/// is only for assertions and tests.
inline constexpr Time kTimeEpsilon = 1e-6;

/// Format seconds as "Dd HH:MM:SS" for logs and example output.
std::string format_time(Time t);

}  // namespace coopcr::sim
