#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace coopcr::sim {

std::string format_time(Time t) {
  if (!std::isfinite(t)) return "never";
  const bool negative = t < 0;
  double seconds = std::abs(t);
  const auto days = static_cast<long>(seconds / 86400.0);
  seconds -= static_cast<double>(days) * 86400.0;
  const auto hours = static_cast<int>(seconds / 3600.0);
  seconds -= hours * 3600.0;
  const auto minutes = static_cast<int>(seconds / 60.0);
  seconds -= minutes * 60.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%ldd %02d:%02d:%06.3f",
                negative ? "-" : "", days, hours, minutes, seconds);
  return buf;
}

}  // namespace coopcr::sim
