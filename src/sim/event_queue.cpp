#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace coopcr::sim {

namespace {

/// Day widths below this are clamped: sub-microsecond event spacing is far
/// below any modelled quantity, and the floor keeps day indices well inside
/// exact double range.
constexpr double kMinWidth = 1e-6;

/// Target events per day: a freshly loaded day is sorted once (~k log k) and
/// then served by O(1) pops, so a handful per day amortises best.
constexpr double kTargetPerDay = 8.0;

/// Bucket-count bounds. The lower bound keeps the calendar trivial for tiny
/// queues; the upper bound caps rebuild cost for pathological populations.
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

}  // namespace

// --- slab --------------------------------------------------------------------

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    Slot& slot = slot_at(index);
    free_head_ = slot.next_free;
    slot.next_free = kNoSlot;
    return index;
  }
  COOPCR_CHECK(slot_count_ < kSlotMask, "event slab exhausted");
  // Capacity after k chunks is kFirstChunk * (2^k - 1); grow geometrically.
  if (slot_count_ ==
      ((kFirstChunk << chunks_.size()) - kFirstChunk)) {
    chunks_.push_back(
        std::make_unique<Slot[]>(kFirstChunk << chunks_.size()));
  }
  return static_cast<std::uint32_t>(slot_count_++);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slot_at(index);
  slot.id = kInvalidEventId;  // invalidate outstanding handles/calendar keys
  slot.fn = nullptr;          // destroy the callback now, not at pop time
  slot.next_free = free_head_;
  free_head_ = index;
}

// --- calendar ----------------------------------------------------------------
//
// Keys are ordered by the exact integer day index floor(t / width): days are
// served in increasing index order and each day's keys are sorted by
// (time, id) before serving, which yields the strict global (time, id) order
// — day(t) is monotone in t, and all calendar decisions use the same
// integral day computation, so no key can slip past its day through float
// drift.

std::uint64_t EventQueue::day_of(Time t) const {
  return static_cast<std::uint64_t>(t / width_);
}

void EventQueue::insert_key(Key key) const {
  const std::uint64_t day = day_of(key.time);
  if (day <= current_day_) {
    // Belongs to the serving window: sorted insert (descending, min at the
    // back). Events scheduled at ~now land at the back — a cheap append.
    const auto pos = std::upper_bound(
        today_.begin(), today_.end(), key,
        [](const Key& a, const Key& b) { return b.fires_before(a); });
    today_.insert(pos, key);
  } else {
    buckets_[static_cast<std::size_t>(day) & (bucket_count_ - 1)].push_back(
        key);
  }
}

void EventQueue::jump_to_earliest() const {
  const Key* best = nullptr;
  for (std::size_t b = 0; b < bucket_count_; ++b) {
    for (const Key& key : buckets_[b]) {
      if (!is_live(key)) continue;
      if (best == nullptr || key.fires_before(*best)) best = &key;
    }
  }
  COOPCR_ASSERT(best != nullptr, "live events exist but none found");
  current_day_ = day_of(best->time);
}

void EventQueue::refill() const {
  while (!today_.empty() && !is_live(today_.back())) {
    today_.pop_back();  // cancelled while waiting in the serving window
    --stale_count_;
  }
  if (!today_.empty() || live_count_ == 0) return;
  // Advance day by day until a bucket yields keys for the current day.
  std::size_t advanced = 0;
  for (;;) {
    std::vector<Key>& bucket =
        buckets_[static_cast<std::size_t>(current_day_) &
                 (bucket_count_ - 1)];
    bool loaded = false;
    if (!bucket.empty()) {
      std::size_t keep = 0;
      for (std::size_t r = 0; r < bucket.size(); ++r) {
        const Key key = bucket[r];
        if (!is_live(key)) {
          --stale_count_;  // drop stale keys while we touch the bucket
        } else if (day_of(key.time) <= current_day_) {
          today_.push_back(key);
          loaded = true;
        } else {
          bucket[keep++] = key;  // a later day (or a later year)
        }
      }
      bucket.resize(keep);
    }
    if (loaded) break;
    ++current_day_;
    if (++advanced >= bucket_count_) {
      // A whole year scanned empty: events are sparse — jump straight to
      // the earliest live key's day instead of walking empty days.
      jump_to_earliest();
      advanced = 0;
    }
  }
  std::sort(today_.begin(), today_.end(),
            [](const Key& a, const Key& b) { return b.fires_before(a); });
}

void EventQueue::rebuild() {
  // Gather every live key.
  std::vector<Key> live;
  live.reserve(live_count_);
  for (const Key& key : today_) {
    if (is_live(key)) live.push_back(key);
  }
  for (std::size_t b = 0; b < bucket_count_; ++b) {
    for (const Key& key : buckets_[b]) {
      if (is_live(key)) live.push_back(key);
    }
    buckets_[b].clear();
  }
  today_.clear();
  stale_count_ = 0;
  COOPCR_ASSERT(live.size() == live_count_, "calendar lost live events");

  if (live.empty()) {
    current_day_ = 0;
    width_ = 1.0;
    return;
  }

  // Bucket count ~ live/4 (a few events per bucket) and day width sized for
  // ~kTargetPerDay events per day: each refill scans one shallow bucket and
  // sorts a handful of keys. Physical bucket storage only ever grows, so
  // rebuilt calendars reuse the vectors' capacity.
  bucket_count_ =
      std::clamp(std::bit_ceil(live.size() / 4 + 1), kMinBuckets, kMaxBuckets);
  if (buckets_.size() < bucket_count_) buckets_.resize(bucket_count_);
  Time min_t = std::numeric_limits<double>::infinity();
  Time max_t = -std::numeric_limits<double>::infinity();
  for (const Key& key : live) {
    min_t = std::min(min_t, key.time);
    max_t = std::max(max_t, key.time);
  }
  const double span = max_t - min_t;
  width_ = std::max(kTargetPerDay * span / static_cast<double>(live.size()),
                    kMinWidth);

  // Reposition the serving window on the earliest day, then redistribute.
  current_day_ = day_of(min_t);
  for (const Key& key : live) {
    const std::uint64_t day = day_of(key.time);
    if (day <= current_day_) {
      today_.push_back(key);
    } else {
      buckets_[static_cast<std::size_t>(day) & (bucket_count_ - 1)].push_back(
          key);
    }
  }
  std::sort(today_.begin(), today_.end(),
            [](const Key& a, const Key& b) { return b.fires_before(a); });
}

// --- queue operations --------------------------------------------------------

EventId EventQueue::schedule(Time t, EventFn fn) {
  COOPCR_CHECK(std::isfinite(t), "event time must be finite");
  COOPCR_CHECK(t >= now_, "cannot schedule an event in the past");
  COOPCR_CHECK(static_cast<bool>(fn), "event callback must be callable");
  const std::uint32_t index = acquire_slot();
  const EventId id =
      (next_seq_++ << kSlotBits) | static_cast<EventId>(index + 1);
  Slot& slot = slot_at(index);
  slot.id = id;
  slot.fn = std::move(fn);

  if (bucket_count_ == 0) {
    bucket_count_ = kMinBuckets;
    if (buckets_.size() < bucket_count_) buckets_.resize(bucket_count_);
  }
  ++live_count_;
  if (live_count_ == 1) {
    // Waking an idle calendar: reposition the serving window on this event's
    // day so pops don't walk the empty days since the last activity.
    current_day_ = day_of(t);
  }
  insert_key(Key{t, id});
  if (live_count_ > 8 * bucket_count_ && bucket_count_ < kMaxBuckets) {
    rebuild();  // population doubled since the last layout — re-derive it
  }
  return id;
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t slot_plus_one = id & kSlotMask;
  if (slot_plus_one == 0 || slot_plus_one > slot_count_) return false;
  const auto index = static_cast<std::uint32_t>(slot_plus_one - 1);
  if (slot_at(index).id != id) return false;  // stale: fired/cancelled
  release_slot(index);
  COOPCR_ASSERT(live_count_ > 0, "live count underflow on cancel");
  --live_count_;
  ++stale_count_;
  // Amortised O(1) sweep: rebuild only when stale keys dominate, so a
  // cancel-heavy long-horizon run cannot grow the calendar beyond ~2x its
  // live size.
  if (stale_count_ > live_count_ + 64) rebuild();
  return true;
}

Time EventQueue::next_time() const {
  if (live_count_ == 0) return kTimeNever;
  refill();
  return today_.back().time;
}

EventQueue::Fired EventQueue::pop() {
  COOPCR_CHECK(live_count_ > 0, "pop() on empty event queue");
  refill();
  const Key top = today_.back();
  today_.pop_back();
  const auto index = static_cast<std::uint32_t>((top.id & kSlotMask) - 1);
  Slot& slot = slot_at(index);
  Fired fired{top.time, top.id, std::move(slot.fn)};
  release_slot(index);
  --live_count_;
  if (bucket_count_ > kMinBuckets && live_count_ * 16 < bucket_count_) {
    rebuild();  // drained far below the layout's population — shrink lazily
  }
  return fired;
}

void EventQueue::clear() {
  // Keep the chunks (stable capacity) but reset every created slot; ids and
  // slot allocation order restart exactly like a fresh queue.
  for (std::size_t i = 0; i < slot_count_; ++i) {
    Slot& slot = slot_at(i);
    slot.id = kInvalidEventId;
    slot.fn = nullptr;
    slot.next_free = kNoSlot;
  }
  for (auto& bucket : buckets_) bucket.clear();
  bucket_count_ = 0;
  today_.clear();
  free_head_ = kNoSlot;
  slot_count_ = 0;
  current_day_ = 0;
  width_ = 1.0;
  stale_count_ = 0;
  live_count_ = 0;
  next_seq_ = 1;
  now_ = 0.0;
}

}  // namespace coopcr::sim
