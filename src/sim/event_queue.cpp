#include "sim/event_queue.hpp"

#include <cmath>

#include "util/error.hpp"

namespace coopcr::sim {

EventId EventQueue::schedule(Time t, EventFn fn) {
  COOPCR_CHECK(std::isfinite(t), "event time must be finite");
  COOPCR_CHECK(t >= now_, "cannot schedule an event in the past");
  COOPCR_CHECK(static_cast<bool>(fn), "event callback must be callable");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq});
  callbacks_.emplace(seq, std::move(fn));
  ++live_count_;
  return seq;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  COOPCR_ASSERT(live_count_ > 0, "live count underflow on cancel");
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) return kTimeNever;
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  COOPCR_CHECK(!heap_.empty(), "pop() on empty event queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.seq);
  COOPCR_ASSERT(it != callbacks_.end(), "live heap entry without callback");
  Fired fired{top.time, top.seq, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace coopcr::sim
