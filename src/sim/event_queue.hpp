// coopcr/sim/event_queue.hpp
//
// Cancellable pending-event set for the discrete-event engine.
//
// Design (the hot path of every Monte Carlo replica):
//
//  * Event callbacks live in a free-listed, chunked slab of slots; an
//    EventId packs a monotone scheduling sequence over the slab slot
//    ((seq << 24) | slot+1), so handles resolve with two array reads — no
//    hash table anywhere — and stale handles (fired/cancelled events, whose
//    slot now carries a different id) are rejected by a single comparison.
//    Chunks never move, so growing the slab never relocates live callbacks.
//
//  * Pending (time, id) keys are ordered by a calendar queue (R. Brown,
//    CACM 1988): a power-of-two array of day-width buckets addressed by
//    floor(t / width) mod nbuckets, plus a sorted "today" window that serves
//    pops from its back. Schedule and pop are O(1) amortised — against the
//    O(log n) binary heap this roughly halves the per-event cost at the
//    10^4..10^5 pending events the micro benches stress. The queue resizes
//    (bucket count ~ live events, width ~ mean event spacing) as the
//    population changes.
//
//  * Ids are monotone in scheduling order and unique, so (time, id) is a
//    strict total order: the pop sequence is independent of bucket layout or
//    resize history, and ties break by insertion order — runs are fully
//    deterministic, bit-identical to a heap-backed implementation.
//
//  * O(1) cancel: cancelling destroys the callback and recycles the slot
//    immediately (nothing accumulates for events that are cancelled but
//    never popped); the stale 16-byte key is dropped when its bucket is next
//    scanned, or by a global sweep when stale keys outnumber live ones.
//
//  * Events carry a `sim::InlineFn` callback: the simulator's state machine
//    is written as plain member functions bound at schedule time, and those
//    small captures are stored inline — zero allocation per event.

#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace coopcr::sim {

/// Opaque handle identifying a scheduled event; used to cancel it. Monotone
/// in scheduling order; stale handles are safely rejected.
using EventId = std::uint64_t;

/// Invalid event handle (never returned by schedule()).
inline constexpr EventId kInvalidEventId = 0;

/// Callback executed when an event fires. Captures up to
/// InlineFn::inline_capacity() bytes are stored without heap allocation.
using InlineFn = InlineFunction<void(), 48>;
using EventFn = InlineFn;

/// Priority queue of cancellable timed callbacks.
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedule `fn` at absolute time `t`. Returns a handle for cancellation.
  /// `t` must be finite; scheduling in the past is a caller bug and throws.
  EventId schedule(Time t, EventFn fn);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event (a stale handle) is a safe no-op (returns
  /// false). The event's slot — callback included — is reclaimed here, not
  /// at pop time.
  bool cancel(EventId id);

  /// True when no live event remains.
  bool empty() const { return live_count_ == 0; }

  /// Number of live (scheduled, not yet fired/cancelled) events.
  std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  Time next_time() const;

  /// Pop and return the earliest live event. Caller must check !empty().
  struct Fired {
    Time time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

  /// Lower bound for schedule(): events may not be scheduled before this.
  /// The engine advances it to the current simulation time.
  void set_now(Time now) { now_ = now; }
  Time now() const { return now_; }

  /// Total events ever scheduled (monotone counter, for stats/tests).
  std::uint64_t total_scheduled() const { return next_seq_ - 1; }

  /// Drop every pending event and reset all counters to a pristine state,
  /// keeping slab and bucket capacity. A cleared queue behaves
  /// bit-identically to a freshly constructed one (same ids, same order) —
  /// this is what makes per-replica engine reuse safe.
  void clear();

  /// Slab/calendar introspection (tests, BENCH_engine.json): slots ever
  /// created and stale keys awaiting cleanup.
  std::size_t slab_slots() const { return slot_count_; }
  std::size_t stale_items() const { return stale_count_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Slot bits in an EventId: up to ~16.7M concurrently-pending events, with
  /// 40 bits of monotone scheduling sequence above them.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  /// Slots are allocated in chunks that never move: growing the slab never
  /// relocates live callbacks (vector reallocation would move every InlineFn
  /// through its manager function — 20% of a schedule-heavy run). Chunk c
  /// holds kFirstChunk << c slots, so a short-lived engine initialises 64
  /// slots, not a laptop page-cache worth, while big queues still amortise.
  static constexpr unsigned kFirstChunkShift = 6;
  static constexpr std::size_t kFirstChunk = std::size_t{1}
                                             << kFirstChunkShift;

  struct Slot {
    EventId id = kInvalidEventId;  ///< full id; kInvalidEventId when free
    std::uint32_t next_free = kNoSlot;
    EventFn fn;
  };

  /// 16-byte POD calendar key. `id` resolves the slab slot and validates
  /// liveness; its monotone sequence also breaks time ties.
  struct Key {
    Time time;
    EventId id;
    bool fires_before(const Key& other) const {
      if (time != other.time) return time < other.time;
      return id < other.id;
    }
  };

  /// Geometric chunk addressing: slot s lives in chunk
  /// c = bit_width((s >> 6) + 1) - 1 at offset s - (64 << c) + 64.
  Slot& slot_at(std::size_t index) {
    const std::size_t biased = (index >> kFirstChunkShift) + 1;
    const unsigned c = std::bit_width(biased) - 1;
    return chunks_[c][index - ((kFirstChunk << c) - kFirstChunk)];
  }
  const Slot& slot_at(std::size_t index) const {
    const std::size_t biased = (index >> kFirstChunkShift) + 1;
    const unsigned c = std::bit_width(biased) - 1;
    return chunks_[c][index - ((kFirstChunk << c) - kFirstChunk)];
  }

  bool is_live(const Key& key) const {
    return slot_at((key.id & kSlotMask) - 1).id == key.id;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  /// Exact integer day index of a timestamp — the one ordering primitive
  /// every calendar decision shares.
  std::uint64_t day_of(Time t) const;
  /// Ensure today_ serves the earliest live key (unless the queue is empty):
  /// strips stale keys and loads/sorts the next non-empty day on demand.
  void refill() const;
  /// Reposition the calendar on the globally earliest live key (used when a
  /// full bucket sweep finds nothing in range — sparse far-future events).
  void jump_to_earliest() const;
  /// Re-derive bucket count and day width from the live population and
  /// redistribute every live key (drops stale ones).
  void rebuild();
  void insert_key(Key key) const;

  // --- slab ---
  std::vector<std::unique_ptr<Slot[]>> chunks_;  ///< stable-address slab
  std::size_t slot_count_ = 0;                   ///< slots ever created
  std::uint32_t free_head_ = kNoSlot;

  // --- calendar (mutable: refill() repositions lazily from const paths) ---
  /// Physical bucket storage never shrinks (capacity reuse); only the
  /// logical power-of-two `bucket_count_` prefix is addressed.
  mutable std::vector<std::vector<Key>> buckets_;
  std::size_t bucket_count_ = 0;    ///< logical bucket count (power of two)
  mutable std::vector<Key> today_;  ///< current day, sorted desc; min at back
  mutable std::uint64_t current_day_ = 0;  ///< serving day index
  double width_ = 1.0;                     ///< day width (seconds)
  mutable std::size_t stale_count_ = 0;  ///< cancelled keys not yet dropped

  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
  Time now_ = 0.0;
};

}  // namespace coopcr::sim
