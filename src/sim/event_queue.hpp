// coopcr/sim/event_queue.hpp
//
// Cancellable pending-event set for the discrete-event engine.
//
// Design:
//  * binary min-heap ordered by (time, sequence) — ties are broken by
//    insertion order, so runs are fully deterministic;
//  * O(log n) schedule, O(1) amortised lazy cancel (cancelled entries are
//    skipped at pop time);
//  * events carry a `std::function<void()>` callback: the simulator's state
//    machine is written as plain member functions bound at schedule time.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace coopcr::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
using EventId = std::uint64_t;

/// Invalid event handle (never returned by schedule()).
inline constexpr EventId kInvalidEventId = 0;

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// Priority queue of cancellable timed callbacks.
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedule `fn` at absolute time `t`. Returns a handle for cancellation.
  /// `t` must be finite; scheduling in the past is a caller bug and throws.
  EventId schedule(Time t, EventFn fn);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op (returns false).
  bool cancel(EventId id);

  /// True when no live event remains.
  bool empty() const { return live_count_ == 0; }

  /// Number of live (scheduled, not yet fired/cancelled) events.
  std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  Time next_time() const;

  /// Pop and return the earliest live event. Caller must check !empty().
  struct Fired {
    Time time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

  /// Lower bound for schedule(): events may not be scheduled before this.
  /// The engine advances it to the current simulation time.
  void set_now(Time now) { now_ = now; }
  Time now() const { return now_; }

  /// Total events ever scheduled (monotone counter, for stats/tests).
  std::uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // doubles as the EventId
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      heap_;
  std::unordered_map<std::uint64_t, EventFn> callbacks_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
  Time now_ = 0.0;
};

}  // namespace coopcr::sim
