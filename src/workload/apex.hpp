// coopcr/workload/apex.hpp
//
// The LANL workload of the APEX Workflows report, as reproduced in Table 1 of
// the paper: four application classes (EAP, LAP, Silverton, VPIC) with their
// platform shares, work times, core counts and I/O volumes (percent of the
// job's memory footprint).
//
//   Workflow                    EAP    LAP    Silverton  VPIC
//   Workload percentage         66     5.5    16.5       12
//   Work time (h)               262.4  64     128        157.2
//   Number of cores             16384  4096   32768      30000
//   Initial Input (% of mem)    3      5      70         10
//   Final Output (% of mem)     105    220    43         270
//   Checkpoint Size (% of mem)  160    185    350        85

#pragma once

#include <vector>

#include "workload/app_class.hpp"

namespace coopcr {

/// The four LANL APEX application classes of Table 1.
std::vector<ApplicationClass> apex_lanl_classes();

/// Project application classes from `from` onto `to`, keeping each class's
/// share of the machine: core counts scale with the total core count, so the
/// memory footprints (core-share × machine memory) scale with the machine
/// memory — §6.2's "scaling the problem size proportionally to the change in
/// machine memory size". Work times and I/O percentages are unchanged.
std::vector<ApplicationClass> project_workload(
    std::vector<ApplicationClass> apps, const PlatformSpec& from,
    const PlatformSpec& to);

/// Convenience accessors for individual classes (by Table 1 column).
ApplicationClass apex_eap();
ApplicationClass apex_lap();
ApplicationClass apex_silverton();
ApplicationClass apex_vpic();

}  // namespace coopcr
