// coopcr/workload/job.hpp
//
// A job is one application instance scheduled on the platform (paper §2).
// Fresh jobs are produced by the workload generator; restart jobs are created
// by the simulator when a failure kills a running job ("its initial input
// corresponds to the restart size, and its work time corresponds to the
// remaining work from the last successful checkpoint", §5).

#pragma once

#include <cstdint>

#include "platform/node_pool.hpp"

namespace coopcr {

/// Static description of a job instance handed to the scheduler.
struct Job {
  JobId id = kNoJob;
  int class_index = -1;      ///< index into the resolved class vector
  std::int64_t nodes = 0;    ///< q — failure units required

  /// Work is measured as an absolute position in seconds of compute within
  /// the *original* job: a fresh job spans [0, total_work); a restart spans
  /// [work_start, total_work) where work_start is the last snapshot.
  double total_work = 0.0;
  double work_start = 0.0;

  double input_bytes = 0.0;   ///< initial input (fresh) or recovery volume (restart)
  double output_bytes = 0.0;  ///< final output volume
  double checkpoint_bytes = 0.0;
  double routine_io_bytes = 0.0;  ///< non-CR I/O left to issue over the remaining work

  /// Scheduling priority: higher runs first. Fresh jobs use 0; restarts use
  /// 1 so they jump to the head of the queue (§2 "Job Scheduling Model").
  int priority = 0;

  bool is_restart = false;
  /// True when the lineage has committed at least one checkpoint: the job's
  /// initial read is then a recovery of `checkpoint_bytes` starting at
  /// `work_start`; otherwise a restart re-reads the original input from
  /// scratch.
  bool has_checkpoint = false;
  JobId root = kNoJob;  ///< original ancestor (== id for fresh jobs)
  int generation = 0;   ///< number of restarts in the lineage

  /// Remaining compute seconds.
  double remaining_work() const { return total_work - work_start; }

  /// True when the job instance is internally consistent.
  bool well_formed() const {
    return id >= 0 && class_index >= 0 && nodes > 0 && total_work > 0.0 &&
           work_start >= 0.0 && work_start < total_work &&
           input_bytes >= 0.0 && output_bytes >= 0.0 &&
           checkpoint_bytes > 0.0 && routine_io_bytes >= 0.0;
  }
};

}  // namespace coopcr
