#include "workload/apex.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace coopcr {

ApplicationClass apex_eap() {
  ApplicationClass c;
  c.name = "EAP";
  c.workload_share = 0.66;
  c.work_seconds = units::hours(262.4);
  c.cores = 16384;
  c.input_fraction = 0.03;
  c.output_fraction = 1.05;
  c.checkpoint_fraction = 1.60;
  return c;
}

ApplicationClass apex_lap() {
  ApplicationClass c;
  c.name = "LAP";
  c.workload_share = 0.055;
  c.work_seconds = units::hours(64);
  c.cores = 4096;
  c.input_fraction = 0.05;
  c.output_fraction = 2.20;
  c.checkpoint_fraction = 1.85;
  return c;
}

ApplicationClass apex_silverton() {
  ApplicationClass c;
  c.name = "Silverton";
  c.workload_share = 0.165;
  c.work_seconds = units::hours(128);
  c.cores = 32768;
  c.input_fraction = 0.70;
  c.output_fraction = 0.43;
  c.checkpoint_fraction = 3.50;
  return c;
}

ApplicationClass apex_vpic() {
  ApplicationClass c;
  c.name = "VPIC";
  c.workload_share = 0.12;
  c.work_seconds = units::hours(157.2);
  c.cores = 30000;
  c.input_fraction = 0.10;
  c.output_fraction = 2.70;
  c.checkpoint_fraction = 0.85;
  return c;
}

std::vector<ApplicationClass> apex_lanl_classes() {
  return {apex_eap(), apex_lap(), apex_silverton(), apex_vpic()};
}

std::vector<ApplicationClass> project_workload(
    std::vector<ApplicationClass> apps, const PlatformSpec& from,
    const PlatformSpec& to) {
  const double core_ratio = static_cast<double>(to.total_cores()) /
                            static_cast<double>(from.total_cores());
  for (auto& app : apps) {
    const double scaled = static_cast<double>(app.cores) * core_ratio;
    // Round to a whole multiple of the target's cores-per-node so job sizes
    // stay aligned with failure units.
    const auto units =
        static_cast<std::int64_t>(scaled / to.cores_per_node + 0.5);
    app.cores = std::max<std::int64_t>(1, units) * to.cores_per_node;
  }
  return apps;
}

}  // namespace coopcr
