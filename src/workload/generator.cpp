#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace coopcr {

WorkloadGenerator::WorkloadGenerator(std::vector<ClassOnPlatform> classes,
                                     PlatformSpec platform,
                                     WorkloadOptions options)
    : classes_(std::move(classes)),
      platform_(std::move(platform)),
      options_(options) {
  COOPCR_CHECK(!classes_.empty(), "generator needs at least one class");
  platform_.validate();
  COOPCR_CHECK(options_.min_makespan > 0.0, "min_makespan must be positive");
  COOPCR_CHECK(options_.proportion_tolerance > 0.0,
               "proportion tolerance must be positive");
}

double WorkloadGenerator::draw_duration(const ClassOnPlatform& cls,
                                        Rng& rng) const {
  const double w = cls.app.work_seconds;
  switch (options_.jitter) {
    case DurationJitter::kNone:
      return w;
    case DurationJitter::kUniform20:
      return rng.uniform(0.8 * w, 1.2 * w);
    case DurationJitter::kNormal20: {
      // Truncate to keep durations physical; the paper's "small (20%)
      // standard deviation" makes truncation extremely rare.
      const double d = rng.normal(w, 0.2 * w);
      return std::clamp(d, 0.5 * w, 2.0 * w);
    }
  }
  return w;
}

std::vector<Job> WorkloadGenerator::generate(Rng& rng) const {
  const std::size_t k = classes_.size();
  std::vector<double> node_seconds(k, 0.0);
  double total_node_seconds = 0.0;

  // Normalised share targets (shares may sum below 1 when part of the
  // machine is reserved; proportions are relative to the generated mix).
  double share_sum = 0.0;
  for (const auto& c : classes_) share_sum += c.app.workload_share;
  std::vector<double> target(k);
  for (std::size_t i = 0; i < k; ++i) {
    target[i] = classes_[i].app.workload_share / share_sum;
  }

  const double min_total =
      options_.min_makespan * static_cast<double>(platform_.nodes);

  std::vector<Job> jobs;
  auto proportions_ok = [&]() {
    if (total_node_seconds <= 0.0) return false;
    for (std::size_t i = 0; i < k; ++i) {
      const double share = node_seconds[i] / total_node_seconds;
      if (std::abs(share - target[i]) > options_.proportion_tolerance) {
        return false;
      }
    }
    return true;
  };

  // Random instantiation. Classes are drawn with probability proportional to
  // their current node-second deficit (target - achieved), which is both
  // random (any under-represented class can be drawn) and convergent: a class
  // at or above target is never drawn again until others catch up. This
  // realises the paper's "count the resource allocated ... until within 1%"
  // loop without rejection storms.
  while ((total_node_seconds < min_total || !proportions_ok()) &&
         jobs.size() < options_.max_jobs) {
    std::vector<double> weight(k);
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double achieved =
          total_node_seconds > 0.0 ? node_seconds[i] / total_node_seconds : 0.0;
      weight[i] = std::max(target[i] - achieved, 0.0);
      weight_sum += weight[i];
    }
    std::size_t pick = 0;
    if (weight_sum <= 0.0) {
      // All classes at/above target but makespan still short: draw by target
      // share to keep proportions stable while extending the horizon.
      // Raw draw: antithetic pair members share the class-pick sequence so
      // their workloads stay structurally aligned (see Rng::uniform_raw).
      double r = rng.uniform_raw();
      for (std::size_t i = 0; i < k; ++i) {
        if (r < target[i] || i + 1 == k) {
          pick = i;
          break;
        }
        r -= target[i];
      }
    } else {
      double r = rng.uniform_raw() * weight_sum;
      for (std::size_t i = 0; i < k; ++i) {
        if (r < weight[i] || i + 1 == k) {
          pick = i;
          break;
        }
        r -= weight[i];
      }
    }

    const ClassOnPlatform& cls = classes_[pick];
    Job job;
    job.id = static_cast<JobId>(jobs.size());
    job.class_index = static_cast<int>(pick);
    job.nodes = cls.nodes;
    job.total_work = draw_duration(cls, rng);
    job.work_start = 0.0;
    job.input_bytes = cls.input_bytes;
    job.output_bytes = cls.output_bytes;
    job.checkpoint_bytes = cls.checkpoint_bytes;
    job.routine_io_bytes = cls.routine_io_bytes;
    job.priority = 0;
    job.is_restart = false;
    job.root = job.id;
    job.generation = 0;
    jobs.push_back(job);

    const double ns = job.total_work * static_cast<double>(job.nodes);
    node_seconds[pick] += ns;
    total_node_seconds += ns;
  }
  COOPCR_CHECK(jobs.size() < options_.max_jobs,
               "workload generation did not converge (max_jobs reached)");

  // Fisher-Yates shuffle, then re-number ids in arrival order so that
  // priorities and ids agree with the presentation order.
  for (std::size_t i = jobs.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_index(static_cast<std::uint64_t>(i)));
    std::swap(jobs[i - 1], jobs[j]);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
    jobs[i].root = jobs[i].id;
  }
  return jobs;
}

WorkloadComposition WorkloadGenerator::compose(
    const std::vector<Job>& jobs) const {
  WorkloadComposition comp;
  comp.node_seconds.assign(classes_.size(), 0.0);
  comp.job_counts.assign(classes_.size(), 0);
  for (const auto& job : jobs) {
    COOPCR_CHECK(job.class_index >= 0 &&
                     static_cast<std::size_t>(job.class_index) < classes_.size(),
                 "job references unknown class");
    const auto idx = static_cast<std::size_t>(job.class_index);
    comp.node_seconds[idx] +=
        job.remaining_work() * static_cast<double>(job.nodes);
    comp.job_counts[idx] += 1;
  }
  for (const double ns : comp.node_seconds) comp.total_node_seconds += ns;
  comp.shares.assign(classes_.size(), 0.0);
  if (comp.total_node_seconds > 0.0) {
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      comp.shares[i] = comp.node_seconds[i] / comp.total_node_seconds;
    }
  }
  comp.equivalent_makespan =
      comp.total_node_seconds / static_cast<double>(platform_.nodes);
  return comp;
}

}  // namespace coopcr
