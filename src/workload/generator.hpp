// coopcr/workload/generator.hpp
//
// Workload (job list) generation — paper §5, "High level parameters":
//
//   "A simulation will randomly instantiate one of the four classes,
//    assigning a work duration uniformly distributed between 0.8w and 1.2w,
//    where w is the typical walltime specified for the chosen application
//    class, and count the resource allocated for this application class,
//    until 1.) the simulated execution would necessarily run for at least
//    2 months, and 2.) resources used by the selected class is within 1% of
//    the target goal of the representative workload percentage."
//
// The generated list is shuffled and presented to the scheduler in arrival
// order (§2: "We shuffle and simultaneously present all jobs to the
// scheduler").

#pragma once

#include <vector>

#include "platform/platform.hpp"
#include "util/rng.hpp"
#include "workload/app_class.hpp"
#include "workload/job.hpp"

namespace coopcr {

/// Job-duration randomisation law. §5 specifies uniform on [0.8w, 1.2w];
/// §2 mentions a normal law with 20% relative standard deviation — both are
/// available, uniform being the default used by all paper benches.
enum class DurationJitter {
  kNone,       ///< every job gets exactly the class work time
  kUniform20,  ///< uniform on [0.8w, 1.2w] (paper §5; default)
  kNormal20,   ///< normal(w, 0.2w), truncated at [0.5w, 2w] (paper §2)
};

/// Options steering the generator.
struct WorkloadOptions {
  /// Minimum aggregate compute the job list must carry, expressed as
  /// node-seconds / platform nodes (i.e. the schedule length at 100%
  /// utilisation). Paper: 60 days.
  double min_makespan = 60.0 * 86400.0;

  /// Per-class node-share tolerance around the target workload percentage.
  double proportion_tolerance = 0.01;

  DurationJitter jitter = DurationJitter::kUniform20;

  /// Safety valve on the number of generated jobs.
  std::size_t max_jobs = 100000;
};

/// Per-class composition of a generated job list (for tests/diagnostics).
struct WorkloadComposition {
  std::vector<double> node_seconds;  ///< per class
  std::vector<double> shares;        ///< per class, fraction of total
  std::vector<std::size_t> job_counts;
  double total_node_seconds = 0.0;
  /// total_node_seconds / platform nodes — schedule length at 100% usage.
  double equivalent_makespan = 0.0;
};

/// Generates shuffled job lists honouring the two §5 constraints.
class WorkloadGenerator {
 public:
  WorkloadGenerator(std::vector<ClassOnPlatform> classes,
                    PlatformSpec platform, WorkloadOptions options = {});

  /// Generate one job list using `rng`. The list is shuffled; job ids are
  /// 0..n-1 in arrival order and all jobs are fresh (generation 0).
  std::vector<Job> generate(Rng& rng) const;

  /// Composition report of a job list (shares, node-seconds, counts).
  WorkloadComposition compose(const std::vector<Job>& jobs) const;

  const std::vector<ClassOnPlatform>& classes() const { return classes_; }
  const WorkloadOptions& options() const { return options_; }

 private:
  double draw_duration(const ClassOnPlatform& cls, Rng& rng) const;

  std::vector<ClassOnPlatform> classes_;
  PlatformSpec platform_;
  WorkloadOptions options_;
};

}  // namespace coopcr
