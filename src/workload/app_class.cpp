#include "workload/app_class.hpp"

#include <algorithm>
#include <cmath>

#include "core/daly.hpp"
#include "util/error.hpp"

namespace coopcr {

void ApplicationClass::validate() const {
  COOPCR_CHECK(!name.empty(), "application class must be named");
  COOPCR_CHECK(workload_share > 0.0 && workload_share <= 1.0,
               "class '" + name + "': workload share must be in (0, 1]");
  COOPCR_CHECK(work_seconds > 0.0,
               "class '" + name + "': work time must be positive");
  COOPCR_CHECK(cores > 0, "class '" + name + "': cores must be positive");
  COOPCR_CHECK(input_fraction >= 0.0,
               "class '" + name + "': input fraction must be >= 0");
  COOPCR_CHECK(output_fraction >= 0.0,
               "class '" + name + "': output fraction must be >= 0");
  COOPCR_CHECK(checkpoint_fraction > 0.0,
               "class '" + name + "': checkpoint fraction must be > 0");
  COOPCR_CHECK(routine_io_fraction >= 0.0,
               "class '" + name + "': routine I/O fraction must be >= 0");
}

double ClassOnPlatform::steady_state_jobs(const PlatformSpec& platform) const {
  return app.workload_share * static_cast<double>(platform.nodes) /
         static_cast<double>(nodes);
}

ClassOnPlatform resolve(const ApplicationClass& app,
                        const PlatformSpec& platform) {
  app.validate();
  platform.validate();
  ClassOnPlatform c;
  c.app = app;
  // Round up so a job never occupies fewer failure units than its cores.
  c.nodes = (app.cores + platform.cores_per_node - 1) / platform.cores_per_node;
  COOPCR_CHECK(c.nodes <= platform.nodes,
               "class '" + app.name + "' does not fit on the platform");
  // Footprint: the job's core-share of the machine memory (DESIGN.md,
  // "Modelling decisions").
  c.footprint_bytes = platform.memory_bytes *
                      static_cast<double>(app.cores) /
                      static_cast<double>(platform.total_cores());
  c.input_bytes = app.input_fraction * c.footprint_bytes;
  c.output_bytes = app.output_fraction * c.footprint_bytes;
  c.checkpoint_bytes = app.checkpoint_fraction * c.footprint_bytes;
  c.routine_io_bytes = app.routine_io_fraction * c.footprint_bytes;
  c.checkpoint_seconds = c.checkpoint_bytes / platform.pfs_bandwidth;
  c.recovery_seconds = c.checkpoint_seconds;  // symmetric read/write (§5)
  c.mtbf = job_mtbf(platform.node_mtbf, c.nodes);
  c.daly_period = daly_period(c.checkpoint_seconds, c.mtbf);
  c.power = platform.power;
  return c;
}

std::vector<ClassOnPlatform> resolve_all(
    const std::vector<ApplicationClass>& apps, const PlatformSpec& platform) {
  COOPCR_CHECK(!apps.empty(), "workload must contain at least one class");
  double share_sum = 0.0;
  for (const auto& app : apps) share_sum += app.workload_share;
  COOPCR_CHECK(share_sum <= 1.0 + 1e-9,
               "workload shares exceed the platform (sum > 1)");
  std::vector<ClassOnPlatform> resolved;
  resolved.reserve(apps.size());
  for (const auto& app : apps) resolved.push_back(resolve(app, platform));
  return resolved;
}

double checkpoint_working_set(const std::vector<ClassOnPlatform>& classes,
                              const PlatformSpec& platform) {
  double sum = 0.0;
  for (const auto& cls : classes) {
    const double jobs =
        std::max(1.0, std::floor(cls.steady_state_jobs(platform) + 0.5));
    sum += jobs * cls.checkpoint_bytes;
  }
  return sum;
}

}  // namespace coopcr
