// coopcr/workload/app_class.hpp
//
// Application-class model (paper §2, "Application Workload Model").
//
// A class groups applications with similar size, duration, memory footprint
// and I/O needs. The I/O quantities are expressed — exactly as in the APEX
// workflows report reproduced in Table 1 — as percentages of the class's
// memory footprint; the footprint itself is the class's core-share of the
// machine's memory. `ClassOnPlatform` resolves those percentages into bytes,
// seconds and MTBFs for a concrete platform.

#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace coopcr {

/// Platform-independent description of an application class.
struct ApplicationClass {
  std::string name;

  /// Target fraction of the platform's nodes used by this class, in [0, 1]
  /// ("Workload percentage" in Table 1, divided by 100).
  double workload_share = 0.0;

  /// Pure compute time of one job (seconds) — Table 1 "Work time".
  double work_seconds = 0.0;

  /// Cores used by one job — Table 1 "Number of cores".
  std::int64_t cores = 0;

  /// Initial input volume as a fraction of the memory footprint
  /// (Table 1 "Initial Input (% of memory)" / 100).
  double input_fraction = 0.0;

  /// Final output volume as a fraction of the memory footprint.
  double output_fraction = 0.0;

  /// Checkpoint volume as a fraction of the memory footprint.
  double checkpoint_fraction = 0.0;

  /// Regular (non-CR) I/O volume over the whole makespan, as a fraction of
  /// the memory footprint. Table 1 does not list this quantity, so it
  /// defaults to 0; §2's model spreads it evenly over the makespan and the
  /// simulator issues it in `routine_io_chunks` equal chunks.
  double routine_io_fraction = 0.0;

  /// Validate invariants; throws coopcr::Error when ill-formed.
  void validate() const;
};

/// An application class resolved against a concrete platform: all paper
/// symbols (q_i, C_i, R_i, µ_i, P_Daly) as concrete numbers.
struct ClassOnPlatform {
  ApplicationClass app;   ///< the source class
  std::int64_t nodes = 0; ///< q_i — failure units per job (cores / cores_per_node)
  double footprint_bytes = 0.0;   ///< job memory footprint
  double input_bytes = 0.0;       ///< initial input volume
  double output_bytes = 0.0;      ///< final output volume
  double checkpoint_bytes = 0.0;  ///< per-checkpoint volume
  double routine_io_bytes = 0.0;  ///< non-CR I/O volume over the makespan
  double checkpoint_seconds = 0.0;  ///< C_i at full PFS bandwidth
  double recovery_seconds = 0.0;    ///< R_i (= C_i, symmetric bandwidths, §5)
  double mtbf = 0.0;                ///< µ_i = µ_ind / q_i
  double daly_period = 0.0;         ///< P_Daly = sqrt(2 µ_i C_i)
  PowerProfile power;               ///< platform per-node draws (energy axis)

  /// Steady-state fractional number of concurrent jobs:
  /// share_i * N / q_i (used by the analytical lower bound).
  double steady_state_jobs(const PlatformSpec& platform) const;
};

/// Resolve `app` on `platform` (bandwidth taken from the platform spec).
ClassOnPlatform resolve(const ApplicationClass& app,
                        const PlatformSpec& platform);

/// Resolve all classes; validates that shares sum to <= 1 + tolerance.
std::vector<ClassOnPlatform> resolve_all(
    const std::vector<ApplicationClass>& apps, const PlatformSpec& platform);

/// Aggregate checkpoint working set (bytes): Σ over classes of
/// checkpoint_bytes × the steady-state concurrent job count (rounded,
/// at least one job per class). The unit burst-buffer capacity factors are
/// expressed against (ScenarioBuilder::burst_buffer, the A4 ablation).
double checkpoint_working_set(const std::vector<ClassOnPlatform>& classes,
                              const PlatformSpec& platform);

}  // namespace coopcr
