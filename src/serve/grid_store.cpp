#include "serve/grid_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dist/journal.hpp"
#include "util/error.hpp"

namespace coopcr::serve {

namespace {

bool summary_equal(const exp::LoadedSummary& a, const exp::LoadedSummary& b) {
  return a.candle.mean == b.candle.mean && a.candle.d1 == b.candle.d1 &&
         a.candle.q1 == b.candle.q1 && a.candle.median == b.candle.median &&
         a.candle.q3 == b.candle.q3 && a.candle.d9 == b.candle.d9 &&
         a.candle.n == b.candle.n && a.se == b.se;
}

/// Content equality of two points on the same cell — a re-emitted artifact
/// covering the same cell is idempotent; diverging content is a conflict.
bool point_equal(const exp::LoadedPoint& a, const exp::LoadedPoint& b) {
  if (a.coords.size() != b.coords.size() ||
      a.strategies.size() != b.strategies.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.coords.size(); ++i) {
    if (a.coords[i].axis != b.coords[i].axis ||
        a.coords[i].value != b.coords[i].value) {
      return false;
    }
  }
  if (!summary_equal(a.baseline_useful, b.baseline_useful) ||
      !summary_equal(a.baseline_useful_energy, b.baseline_useful_energy)) {
    return false;
  }
  for (std::size_t s = 0; s < a.strategies.size(); ++s) {
    const exp::LoadedStrategy& sa = a.strategies[s];
    const exp::LoadedStrategy& sb = b.strategies[s];
    if (sa.name != sb.name || sa.metrics.size() != sb.metrics.size()) {
      return false;
    }
    for (std::size_t m = 0; m < sa.metrics.size(); ++m) {
      if (sa.metrics[m].first != sb.metrics[m].first ||
          !summary_equal(sa.metrics[m].second, sb.metrics[m].second)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::string> strategy_names(const exp::LoadedPoint& point) {
  std::vector<std::string> names;
  names.reserve(point.strategies.size());
  for (const exp::LoadedStrategy& s : point.strategies) {
    names.push_back(s.name);
  }
  return names;
}

std::string cell_label(const exp::LoadedPoint& point) {
  std::ostringstream os;
  for (std::size_t i = 0; i < point.coords.size(); ++i) {
    if (i > 0) os << ", ";
    os << point.coords[i].axis << "=" << point.coords[i].label;
  }
  return os.str();
}

}  // namespace

std::size_t StoredGrid::cell_count() const {
  std::size_t count = 1;
  for (const auto& values : axis_values) count *= values.size();
  return count;
}

std::size_t StoredGrid::point_count() const {
  return static_cast<std::size_t>(
      std::count(filled.begin(), filled.end(), true));
}

bool StoredGrid::complete() const {
  return !cells.empty() && point_count() == cell_count();
}

std::size_t StoredGrid::flat_index(const std::vector<std::size_t>& idx) const {
  COOPCR_CHECK(idx.size() == axes.size(),
               "grid \"" + experiment + "\": cell index arity mismatch");
  std::size_t flat = 0;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    COOPCR_CHECK(idx[a] < axis_values[a].size(),
                 "grid \"" + experiment + "\": axis \"" + axes[a] +
                     "\" index out of range");
    flat = flat * axis_values[a].size() + idx[a];
  }
  return flat;
}

const exp::LoadedPoint& StoredGrid::at(
    const std::vector<std::size_t>& idx) const {
  const std::size_t flat = flat_index(idx);
  COOPCR_CHECK(filled[flat],
               "grid \"" + experiment + "\" has no point at cell " +
                   std::to_string(flat) + " — incomplete ingest");
  return cells[flat];
}

bool GridStore::ingest_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  COOPCR_CHECK(in.good(), "cannot open report artifact: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  COOPCR_CHECK(!in.bad(), "error reading report artifact: " + path);
  return ingest_text(buffer.str(), path);
}

bool GridStore::ingest_text(const std::string& text,
                            const std::string& label) {
  const std::uint64_t digest = dist::fnv1a64(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  if (!digests_.insert(digest).second) return false;  // exact duplicate
  merge(exp::parse_report_json(text, label), label);
  return true;
}

std::size_t GridStore::ingest_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  COOPCR_CHECK(fs::is_directory(dir), "not a directory: " + dir);
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::size_t fresh = 0;
  for (const std::string& path : paths) {
    if (ingest_file(path)) ++fresh;
  }
  return fresh;
}

void GridStore::merge(const exp::LoadedReport& report,
                      const std::string& label) {
  StoredGrid* grid = nullptr;
  for (StoredGrid& g : grids_) {
    if (g.experiment == report.name) {
      grid = &g;
      break;
    }
  }
  if (grid == nullptr) {
    grids_.emplace_back();
    grid = &grids_.back();
    grid->experiment = report.name;
    grid->replicas = report.replicas;
    grid->axes = report.axes;
    grid->axis_values.resize(report.axes.size());
  } else {
    COOPCR_CHECK(grid->axes == report.axes,
                 "artifact " + label + ": axes of experiment \"" +
                     report.name + "\" do not match the stored grid");
    COOPCR_CHECK(grid->replicas == report.replicas,
                 "artifact " + label + ": replicas " +
                     std::to_string(report.replicas) +
                     " do not match the stored grid's " +
                     std::to_string(grid->replicas));
  }

  // Validate the incoming points against the grid's shape before touching
  // anything.
  for (const exp::LoadedPoint& point : report.points) {
    for (std::size_t a = 0; a < grid->axes.size(); ++a) {
      COOPCR_CHECK(point.coords[a].axis == grid->axes[a],
                   "artifact " + label + ": point coord order \"" +
                       point.coords[a].axis + "\" != axis \"" +
                       grid->axes[a] + "\"");
    }
    const std::vector<std::string> names = strategy_names(point);
    if (grid->strategies.empty() && grid->cells.empty()) {
      grid->strategies = names;
    } else {
      COOPCR_CHECK(names == grid->strategies,
                   "artifact " + label +
                       ": strategy set differs between grid points of \"" +
                       report.name + "\"");
    }
  }

  // Rebuild the dense index over old + new points (grids are small — tens
  // to hundreds of cells — so a full rebuild per artifact is fine).
  std::vector<exp::LoadedPoint> all;
  for (std::size_t i = 0; i < grid->cells.size(); ++i) {
    if (grid->filled[i]) all.push_back(std::move(grid->cells[i]));
  }
  all.insert(all.end(), report.points.begin(), report.points.end());

  for (std::size_t a = 0; a < grid->axes.size(); ++a) {
    std::vector<double>& values = grid->axis_values[a];
    values.clear();
    for (const exp::LoadedPoint& point : all) {
      values.push_back(point.coords[a].value);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }

  grid->cells.assign(grid->cell_count(), exp::LoadedPoint{});
  grid->filled.assign(grid->cell_count(), false);
  for (exp::LoadedPoint& point : all) {
    std::vector<std::size_t> idx(grid->axes.size());
    for (std::size_t a = 0; a < grid->axes.size(); ++a) {
      const std::vector<double>& values = grid->axis_values[a];
      const auto it = std::lower_bound(values.begin(), values.end(),
                                       point.coords[a].value);
      idx[a] = static_cast<std::size_t>(it - values.begin());
    }
    const std::size_t flat = grid->flat_index(idx);
    if (grid->filled[flat]) {
      COOPCR_CHECK(point_equal(grid->cells[flat], point),
                   "artifact " + label + ": conflicting data for cell [" +
                       cell_label(point) + "] of \"" + report.name + "\"");
      continue;  // idempotent re-emission of the same cell
    }
    grid->cells[flat] = std::move(point);
    grid->filled[flat] = true;
  }
}

const StoredGrid* GridStore::find(const std::string& experiment) const {
  for (const StoredGrid& grid : grids_) {
    if (grid.experiment == experiment) return &grid;
  }
  return nullptr;
}

const StoredGrid& GridStore::sole() const {
  if (grids_.size() == 1) return grids_.front();
  std::string stored;
  for (const StoredGrid& grid : grids_) {
    if (!stored.empty()) stored += ", ";
    stored += "\"" + grid.experiment + "\"";
  }
  throw Error(grids_.empty()
                  ? std::string("the grid store is empty — ingest artifacts "
                                "before querying")
                  : "query names no experiment and the store holds " +
                        std::to_string(grids_.size()) + " grids (" + stored +
                        ") — set \"experiment\"");
}

std::vector<std::string> GridStore::experiments() const {
  std::vector<std::string> names;
  names.reserve(grids_.size());
  for (const StoredGrid& grid : grids_) names.push_back(grid.experiment);
  return names;
}

}  // namespace coopcr::serve
