#include "serve/advisor.hpp"

#include <chrono>
#include <sstream>

#include "util/csv.hpp"

namespace coopcr::serve {

std::string AdvisorStats::to_json() const {
  std::ostringstream os;
  os << "{\"stats\":{\"queries\":" << queries
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses
     << ",\"interpolated\":" << interpolated << ",\"computed\":" << computed
     << ",\"last_latency_ms\":" << format_number(last_latency_ms, 6)
     << ",\"total_latency_ms\":" << format_number(total_latency_ms, 6)
     << "}}";
  return os.str();
}

Advisor::Advisor(AdvisorOptions options)
    : engine_(store_, options.engine), cache_(options.cache_capacity) {}

bool Advisor::ingest_file(const std::string& path) {
  return store_.ingest_file(path);
}

bool Advisor::ingest_text(const std::string& text, const std::string& label) {
  return store_.ingest_text(text, label);
}

std::size_t Advisor::ingest_dir(const std::string& dir) {
  return store_.ingest_dir(dir);
}

std::string Advisor::answer(const AdvisorQuery& query) {
  const auto start = std::chrono::steady_clock::now();
  ++stats_.queries;

  std::string rendered;
  const std::uint64_t digest = query.digest();
  if (const std::string* cached = cache_.lookup(digest)) {
    ++stats_.cache_hits;
    rendered = *cached;  // the first evaluation's exact bytes
  } else {
    ++stats_.cache_misses;
    const QueryEngine::Counters before = engine_.counters();
    rendered = engine_.answer(query).to_json();
    const QueryEngine::Counters& after = engine_.counters();
    stats_.interpolated += after.interpolated - before.interpolated;
    stats_.computed += after.computed - before.computed;
    cache_.insert(digest, rendered);
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  stats_.last_latency_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  stats_.total_latency_ms += stats_.last_latency_ms;
  return rendered;
}

std::string Advisor::answer_json(const std::string& query_json) {
  return answer(AdvisorQuery::from_json(query_json));
}

}  // namespace coopcr::serve
