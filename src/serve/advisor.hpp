// coopcr/serve/advisor.hpp
//
// The checkpoint advisor: store + engine + cache behind one call.
//
// Advisor owns a GridStore (ingest artifacts once, at startup), a
// QueryEngine (interpolate or fall back to an on-demand campaign) and a
// QueryCache (digest-keyed LRU of rendered answers), and exposes the one
// operation cli/coopcr_advisor loops on: JSON query text in, JSON answer
// text out. Determinism contract: for a fixed ingested store and engine
// options, the same query always returns byte-identical answer text — a
// cache hit returns the first evaluation's exact bytes, and answers carry
// no volatile data. Everything volatile (latencies, hit/miss and
// interpolated/computed counters) accumulates in AdvisorStats, rendered as
// a separate JSON "stats" document for the CLI's stderr.

#pragma once

#include <cstdint>
#include <string>

#include "serve/grid_store.hpp"
#include "serve/query.hpp"
#include "serve/query_cache.hpp"
#include "serve/query_engine.hpp"

namespace coopcr::serve {

/// Volatile service counters — never part of an answer document.
struct AdvisorStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t interpolated = 0;
  std::uint64_t computed = 0;
  double last_latency_ms = 0.0;
  double total_latency_ms = 0.0;

  /// {"stats":{"queries":...,"cache_hits":...,"cache_misses":...,
  ///  "interpolated":...,"computed":...,"last_latency_ms":...,
  ///  "total_latency_ms":...}} — one line, for the CLI's stderr.
  std::string to_json() const;
};

struct AdvisorOptions {
  EngineOptions engine;
  std::size_t cache_capacity = 256;
};

/// One advisor instance: ingest, then answer.
class Advisor {
 public:
  explicit Advisor(AdvisorOptions options = {});

  // The engine holds a reference into the owned store.
  Advisor(const Advisor&) = delete;
  Advisor& operator=(const Advisor&) = delete;

  /// GridStore ingestion pass-throughs (startup phase — ingesting after
  /// queries started would make cached and fresh answers diverge).
  bool ingest_file(const std::string& path);
  bool ingest_text(const std::string& text, const std::string& label);
  std::size_t ingest_dir(const std::string& dir);

  /// Answer a parsed query; cached by query digest.
  std::string answer(const AdvisorQuery& query);

  /// Parse one single-line JSON query and answer it.
  std::string answer_json(const std::string& query_json);

  const GridStore& store() const { return store_; }
  const QueryEngine::Counters& engine_counters() const {
    return engine_.counters();
  }
  const AdvisorStats& stats() const { return stats_; }

 private:
  GridStore store_;
  QueryEngine engine_;
  QueryCache cache_;
  AdvisorStats stats_;
};

}  // namespace coopcr::serve
