#include "serve/query.hpp"

#include <algorithm>
#include <sstream>

#include "dist/journal.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace coopcr::serve {

namespace {

/// Minimal JSON string escape (quotes, backslashes, control characters) —
/// mirrors the report emitter's escape set.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void render_estimate(std::ostream& os, const StrategyEstimate& e) {
  os << "{\"strategy\":\"" << json_escape(e.strategy)
     << "\",\"value\":" << format_number(e.value)
     << ",\"se\":" << format_number(e.se)
     << ",\"ci_halfwidth\":" << format_number(e.ci_halfwidth);
}

}  // namespace

AdvisorQuery AdvisorQuery::from_json(const std::string& text) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const Error& e) {
    throw Error(std::string("bad advisor query: ") + e.what());
  }
  COOPCR_CHECK(doc.is_object(), "bad advisor query: document is not an object");
  AdvisorQuery query;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "experiment") {
      query.experiment = value.as_string();
    } else if (key == "metric") {
      query.metric = value.as_string();
    } else if (key == "coords") {
      for (const auto& [axis, coord] : value.as_object()) {
        query.coords.emplace_back(axis, coord.as_double());
      }
    } else {
      throw Error("bad advisor query: unknown member \"" + key + "\"");
    }
  }
  COOPCR_CHECK(!query.coords.empty(),
               "bad advisor query: no \"coords\" member (or it is empty)");
  for (std::size_t i = 0; i < query.coords.size(); ++i) {
    for (std::size_t j = i + 1; j < query.coords.size(); ++j) {
      COOPCR_CHECK(query.coords[i].first != query.coords[j].first,
                   "bad advisor query: duplicate coord \"" +
                       query.coords[i].first + "\"");
    }
  }
  return query;
}

std::string AdvisorQuery::canonical() const {
  std::vector<std::pair<std::string, double>> sorted = coords;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream os;
  os << "experiment=" << experiment << "|metric=" << metric;
  for (const auto& [axis, value] : sorted) {
    os << "|" << axis << "=" << format_number(value);
  }
  return os.str();
}

std::uint64_t AdvisorQuery::digest() const {
  const std::string text = canonical();
  return dist::fnv1a64(reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size());
}

const StrategyEstimate& AdvisorAnswer::best() const {
  COOPCR_CHECK(!ranking.empty(), "advisor answer has an empty ranking");
  return ranking.front();
}

std::string AdvisorAnswer::to_json() const {
  std::ostringstream os;
  os << "{\"answer_version\":" << kAnswerVersion << ",\"experiment\":\""
     << json_escape(experiment) << "\",\"metric\":\"" << json_escape(metric)
     << "\",\"coords\":{";
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(coords[i].first)
       << "\":" << format_number(coords[i].second);
  }
  os << "},\"source\":\"" << json_escape(source) << "\",\"backend\":\""
     << json_escape(backend) << "\",\"higher_is_better\":"
     << (higher_is_better ? "true" : "false") << ",\"best\":";
  render_estimate(os, best());
  os << ",\"periods\":[";
  for (std::size_t i = 0; i < best_periods.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"app\":\"" << json_escape(best_periods[i].app)
       << "\",\"seconds\":" << format_number(best_periods[i].seconds) << "}";
  }
  os << "]},\"ranking\":[";
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (i > 0) os << ",";
    render_estimate(os, ranking[i]);
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace coopcr::serve
