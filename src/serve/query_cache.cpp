#include "serve/query_cache.hpp"

#include <utility>

namespace coopcr::serve {

const std::string* QueryCache::lookup(std::uint64_t digest) {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->answer;
}

void QueryCache::insert(std::uint64_t digest, std::string answer_json) {
  if (capacity_ == 0) return;
  const auto it = entries_.find(digest);
  if (it != entries_.end()) {
    it->second->answer = std::move(answer_json);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back().digest);
    lru_.pop_back();
  }
  lru_.push_front(Entry{digest, std::move(answer_json)});
  entries_[digest] = lru_.begin();
}

}  // namespace coopcr::serve
