// coopcr/serve/grid_store.hpp
//
// In-memory, axis-indexed store of ingested experiment grids.
//
// GridStore ingests ExperimentReport JSON artifacts (exp/report_io.hpp) and
// organises their points into dense grids keyed by experiment name: per
// axis, the sorted unique coordinate values; per cell, the loaded point.
// Ingestion is digest-keyed — the fnv1a64 of the raw artifact text — so
// re-ingesting the same file is a no-op, and artifacts of the same
// experiment merge (a campaign sharded across several emission runs) as
// long as axes and replica counts agree. Points landing on the same cell
// twice with different content are a conflict and throw.
//
// The store is immutable once queries start: the advisor never ingests
// fallback-computed results back into a grid, because a grid that grows
// with the query stream would make interpolation (and the query cache)
// history-dependent. Rebuild artifacts and re-ingest instead.

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "exp/report_io.hpp"

namespace coopcr::serve {

/// One experiment's dense grid of loaded points.
struct StoredGrid {
  std::string experiment;          ///< report name ("sweep_demo")
  int replicas = 0;                ///< per grid point
  std::vector<std::string> axes;   ///< in artifact (declaration) order
  /// Sorted unique coordinate values per axis, parallel to `axes`.
  std::vector<std::vector<double>> axis_values;
  /// Strategy names at every point, in outcome order (validated uniform).
  std::vector<std::string> strategies;
  /// Dense row-major cell storage (last axis varies fastest). Size is the
  /// product of axis_values sizes once the grid is complete.
  std::vector<exp::LoadedPoint> cells;
  /// Parallel to `cells`: true when the cell has been filled.
  std::vector<bool> filled;

  /// Product of per-axis value counts.
  std::size_t cell_count() const;
  /// Number of filled cells.
  std::size_t point_count() const;
  /// True when every cell of the cartesian product is filled —
  /// interpolation requires this.
  bool complete() const;

  /// Row-major cell index from per-axis value indices.
  std::size_t flat_index(const std::vector<std::size_t>& idx) const;
  /// The filled point at the given per-axis value indices; throws
  /// coopcr::Error on unfilled cells.
  const exp::LoadedPoint& at(const std::vector<std::size_t>& idx) const;
};

/// Digest-keyed ingestion of report artifacts into StoredGrids.
class GridStore {
 public:
  /// Ingest one artifact file. Returns true when the artifact was new,
  /// false when its digest was already present (exact duplicate, no-op).
  /// Throws coopcr::Error on I/O failures, schema_version mismatches,
  /// malformed documents, or grid conflicts (naming the file).
  bool ingest_file(const std::string& path);

  /// Same, from an in-memory document (`label` names it in errors).
  bool ingest_text(const std::string& text, const std::string& label);

  /// Ingest every regular `*.json` file directly under `dir` (sorted by
  /// name, so ingestion order is deterministic). Returns the number of
  /// newly-ingested artifacts.
  std::size_t ingest_dir(const std::string& dir);

  /// The grid for `experiment`, or nullptr when none is stored.
  const StoredGrid* find(const std::string& experiment) const;

  /// The sole stored grid; throws coopcr::Error (listing the stored
  /// experiments) when the store holds zero or several grids — the
  /// resolution for queries that omit "experiment".
  const StoredGrid& sole() const;

  /// Stored experiment names, in first-ingestion order.
  std::vector<std::string> experiments() const;

  std::size_t grid_count() const { return grids_.size(); }
  /// Distinct artifacts ingested (digest count).
  std::size_t artifact_count() const { return digests_.size(); }

 private:
  void merge(const exp::LoadedReport& report, const std::string& label);

  std::vector<StoredGrid> grids_;
  std::set<std::uint64_t> digests_;
};

}  // namespace coopcr::serve
