// coopcr/serve/query.hpp
//
// The advisor's wire types: structured queries and versioned answers.
//
// An AdvisorQuery asks "at this point of parameter space, which strategy
// should I run, with what checkpoint period, and what waste should I
// expect?" — an experiment grid to consult, one coordinate per sweep axis,
// and the metric to rank by. Queries parse from single-line JSON documents
// (cli/coopcr_advisor's stdin protocol) and carry a canonical fnv1a64
// digest, the key of serve::QueryCache.
//
// An AdvisorAnswer is the versioned JSON document the advisor emits: the
// echoed query, how it was answered ("interpolated" from the stored grid or
// "computed" by an on-demand fallback campaign), the best strategy with its
// per-application checkpoint periods, and the full strategy ranking with
// 95% confidence half-widths. Rendering is deterministic — numbers use the
// repo's locale-independent 17-digit round-trip formatting and carry no
// timestamps or latencies — so a cached answer is byte-identical to the
// freshly-rendered one (stats live out of band; see serve/advisor.hpp).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace coopcr::serve {

/// One structured advisor query.
struct AdvisorQuery {
  /// Experiment name of the grid to consult ("sweep_demo",
  /// "fig1_bandwidth_sweep"). May be empty when the store holds exactly one
  /// grid.
  std::string experiment;

  /// One (axis name, value) coordinate per sweep axis of the target grid,
  /// in any order. The engine validates the set matches the grid's axes.
  std::vector<std::pair<std::string, double>> coords;

  /// Metric to rank strategies by (CSV/JSON column name). Empty selects the
  /// engine's default ("waste_ratio").
  std::string metric;

  /// Parse a single-line JSON query:
  ///   {"experiment":"sweep_demo",
  ///    "coords":{"pfs_bandwidth_gbps":80,"interference_alpha":0.5},
  ///    "metric":"waste_ratio"}
  /// "experiment" and "metric" are optional; "coords" is required. Throws
  /// coopcr::Error on malformed documents or unknown members.
  static AdvisorQuery from_json(const std::string& text);

  /// Canonical text form: experiment, metric, and coords sorted by axis
  /// name, values in 17-digit round-trip formatting. Two queries meaning
  /// the same thing canonicalise identically regardless of coord order.
  std::string canonical() const;

  /// fnv1a64 over canonical() — the QueryCache key.
  std::uint64_t digest() const;
};

/// One strategy's estimate at the query point.
struct StrategyEstimate {
  std::string strategy;
  double value = 0.0;          ///< metric mean at the query point
  double se = 0.0;             ///< propagated standard error of the mean
  double ci_halfwidth = 0.0;   ///< 1.96 * se (95% normal CI)
};

/// A per-application checkpoint period of the recommended strategy.
struct AppPeriod {
  std::string app;        ///< application class name
  double seconds = 0.0;   ///< the strategy's period policy at the query point
};

/// The advisor's versioned answer document.
struct AdvisorAnswer {
  /// Version of the rendered answer JSON. Bump whenever the document shape
  /// changes so scripted consumers can detect drift.
  static constexpr int kAnswerVersion = 1;

  std::string experiment;
  std::string metric;
  /// Echoed query coordinates, re-ordered into the grid's axis order.
  std::vector<std::pair<std::string, double>> coords;
  /// "interpolated" (multilinear, from the stored grid) or "computed"
  /// (on-demand fallback campaign through a SweepExecutor).
  std::string source;
  /// Executor backend that ran the fallback campaign; empty for
  /// interpolated answers.
  std::string backend;
  /// True when the metric ranks descending (efficiency, utilization).
  bool higher_is_better = false;

  /// All strategies of the grid, best first (ties broken by name).
  std::vector<StrategyEstimate> ranking;
  /// Checkpoint periods of ranking.front()'s strategy, one per application
  /// class, when the experiment is registry-rebuildable; empty otherwise.
  std::vector<AppPeriod> best_periods;

  /// Best estimate; throws coopcr::Error when the ranking is empty.
  const StrategyEstimate& best() const;

  /// Deterministic single-line JSON rendering:
  ///   {"answer_version":1,"experiment":...,"metric":...,"coords":{...},
  ///    "source":...,"backend":...,"higher_is_better":...,
  ///    "best":{"strategy":...,"value":...,"se":...,"ci_halfwidth":...,
  ///            "periods":[{"app":...,"seconds":...}]},
  ///    "ranking":[{"strategy":...,"value":...,"se":...,
  ///                "ci_halfwidth":...},...]}
  std::string to_json() const;
};

}  // namespace coopcr::serve
