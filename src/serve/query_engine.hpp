// coopcr/serve/query_engine.hpp
//
// Answering advisor queries: multilinear interpolation with Monte Carlo
// fallback.
//
// The engine resolves a query against a GridStore grid and, when the query
// point lies inside the grid's convex hull with every needed corner
// ingested, answers by multilinear interpolation over the 2^d cell corners:
// per strategy, value = Σ wᵢ·meanᵢ and — corners being independent
// campaigns — se = sqrt(Σ (wᵢ·seᵢ)²), reported as a 95% normal CI
// half-width (1.96·se). Strategies are ranked best-first in the metric's
// natural direction (waste down, efficiency up).
//
// Queries the grid cannot answer — out of hull, a missing corner, or an
// interpolated CI wider than the confidence gate — fall back to an
// on-demand single-point campaign: the grid's experiment is rebuilt from
// exp::spec_registry (clear_axes + named_axis at the query coordinates, the
// same pure-rebuild contract dist exec workers rely on) and run through an
// exp::SweepExecutor selected by ExecutorOptions, so the fallback scales
// from an in-process thread pool to dist shard workers without the engine
// knowing which. Fallback results are returned (and cached upstream) but
// never ingested back into the store — see grid_store.hpp.

#pragma once

#include <cstdint>
#include <string>

#include "exp/executor.hpp"
#include "serve/grid_store.hpp"
#include "serve/query.hpp"

namespace coopcr::serve {

/// True when `metric` ranks descending (efficiency, utilization); false
/// for the waste/cost metrics where smaller is better.
bool metric_higher_is_better(const std::string& metric);

/// Engine policy knobs.
struct EngineOptions {
  /// Metric used when a query does not name one.
  std::string default_metric = "waste_ratio";

  /// Confidence gate: when > 0 and the interpolated best estimate's 95% CI
  /// half-width exceeds it, the engine recomputes instead of trusting the
  /// interpolation. 0 disables the gate.
  double max_ci_halfwidth = 0.0;

  /// Replicas for fallback campaigns; 0 uses the grid's own replica count.
  int fallback_replicas = 0;

  /// When > 0, fallback campaigns run under sequential stopping: replicas
  /// double (from the fallback count) until every strategy's 95% CI width
  /// is at most this, on whichever backend `executor` selects — the
  /// in-process runner and the dist coordinator follow the same growth
  /// schedule, so the answer bytes do not depend on the backend.
  double fallback_target_ci = 0.0;

  /// Which sweep engine runs fallback campaigns.
  exp::ExecutorOptions executor;
};

/// Stateless per-query evaluation over an immutable GridStore (plus
/// monotonic counters). Not synchronized — serve one query stream.
class QueryEngine {
 public:
  explicit QueryEngine(const GridStore& store, EngineOptions options = {});

  /// Answer one query. Throws coopcr::Error on unresolvable queries: no
  /// such experiment, axis set mismatch, unknown metric, or a fallback
  /// needed for an experiment the spec registry cannot rebuild.
  AdvisorAnswer answer(const AdvisorQuery& query);

  struct Counters {
    std::uint64_t interpolated = 0;    ///< answered from the stored grid
    std::uint64_t computed = 0;        ///< answered by a fallback campaign
    std::uint64_t out_of_hull = 0;     ///< fallbacks: outside the grid hull
    std::uint64_t missing_corner = 0;  ///< fallbacks: unfilled corner cell
    std::uint64_t low_confidence = 0;  ///< fallbacks: CI gate tripped
  };
  const Counters& counters() const { return counters_; }

 private:
  AdvisorAnswer interpolate(const StoredGrid& grid,
                            const std::vector<double>& values,
                            const std::string& metric, bool* out_of_hull,
                            bool* missing_corner) const;
  AdvisorAnswer compute(const StoredGrid& grid,
                        const std::vector<double>& values,
                        const std::string& metric);
  void attach_best_periods(const StoredGrid& grid,
                           const std::vector<double>& values,
                           AdvisorAnswer& answer) const;

  const GridStore& store_;
  EngineOptions options_;
  Counters counters_;
};

}  // namespace coopcr::serve
