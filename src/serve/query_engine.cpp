#include "serve/query_engine.hpp"

#include <algorithm>
#include <cmath>

#include "core/strategy.hpp"
#include "exp/report.hpp"
#include "exp/spec_registry.hpp"
#include "util/error.hpp"
#include "workload/app_class.hpp"

namespace coopcr::serve {

namespace {

/// 95% two-sided normal quantile — the CI convention the sequential
/// stopping rule already uses.
constexpr double kZ95 = 1.959963984540054;

exp::Metric metric_from_name(const std::string& name) {
  for (const exp::Metric metric : exp::all_metrics()) {
    if (exp::metric_name(metric) == name) return metric;
  }
  std::string known;
  for (const exp::Metric metric : exp::all_metrics()) {
    if (!known.empty()) known += ", ";
    known += exp::metric_name(metric);
  }
  throw Error("unknown metric \"" + name + "\" — known metrics: " + known);
}

/// One axis of the interpolation stencil: bracketing value indices and the
/// position within the bracket (value = (1-t)·lo + t·hi).
struct AxisBracket {
  std::size_t lo = 0;
  std::size_t hi = 0;
  double t = 0.0;
};

void sort_ranking(std::vector<StrategyEstimate>& ranking,
                  bool higher_is_better) {
  std::sort(ranking.begin(), ranking.end(),
            [higher_is_better](const StrategyEstimate& a,
                               const StrategyEstimate& b) {
              if (a.value != b.value) {
                return higher_is_better ? a.value > b.value
                                        : a.value < b.value;
              }
              return a.strategy < b.strategy;
            });
}

}  // namespace

bool metric_higher_is_better(const std::string& metric) {
  return metric == "efficiency" || metric == "utilization";
}

QueryEngine::QueryEngine(const GridStore& store, EngineOptions options)
    : store_(store), options_(std::move(options)) {}

AdvisorAnswer QueryEngine::answer(const AdvisorQuery& query) {
  const StoredGrid* grid = nullptr;
  if (query.experiment.empty()) {
    grid = &store_.sole();
  } else {
    grid = store_.find(query.experiment);
    if (grid == nullptr) {
      std::string stored;
      for (const std::string& name : store_.experiments()) {
        if (!stored.empty()) stored += ", ";
        stored += "\"" + name + "\"";
      }
      throw Error("no stored grid for experiment \"" + query.experiment +
                  "\" — stored: " + (stored.empty() ? "none" : stored));
    }
  }

  const std::string metric =
      query.metric.empty() ? options_.default_metric : query.metric;
  metric_from_name(metric);  // validate before any work

  // Re-order the query coordinates into the grid's axis order; every grid
  // axis must be named exactly once and nothing else.
  std::vector<double> values(grid->axes.size(), 0.0);
  std::vector<bool> covered(grid->axes.size(), false);
  for (const auto& [axis, value] : query.coords) {
    const auto it = std::find(grid->axes.begin(), grid->axes.end(), axis);
    COOPCR_CHECK(it != grid->axes.end(),
                 "query coord \"" + axis + "\" is not an axis of \"" +
                     grid->experiment + "\"");
    const std::size_t pos =
        static_cast<std::size_t>(it - grid->axes.begin());
    values[pos] = value;
    covered[pos] = true;
  }
  for (std::size_t a = 0; a < grid->axes.size(); ++a) {
    COOPCR_CHECK(covered[a], "query misses a coord for axis \"" +
                                 grid->axes[a] + "\" of \"" +
                                 grid->experiment + "\"");
  }

  bool out_of_hull = false;
  bool missing_corner = false;
  AdvisorAnswer answer =
      interpolate(*grid, values, metric, &out_of_hull, &missing_corner);

  bool fallback = out_of_hull || missing_corner;
  if (!fallback && options_.max_ci_halfwidth > 0.0 &&
      answer.best().ci_halfwidth > options_.max_ci_halfwidth) {
    ++counters_.low_confidence;
    fallback = true;
  }
  if (out_of_hull) ++counters_.out_of_hull;
  if (missing_corner) ++counters_.missing_corner;

  if (fallback) {
    answer = compute(*grid, values, metric);
    ++counters_.computed;
  } else {
    ++counters_.interpolated;
  }

  answer.experiment = grid->experiment;
  answer.metric = metric;
  answer.higher_is_better = metric_higher_is_better(metric);
  answer.coords.clear();
  for (std::size_t a = 0; a < grid->axes.size(); ++a) {
    answer.coords.emplace_back(grid->axes[a], values[a]);
  }
  attach_best_periods(*grid, values, answer);
  return answer;
}

AdvisorAnswer QueryEngine::interpolate(const StoredGrid& grid,
                                       const std::vector<double>& values,
                                       const std::string& metric,
                                       bool* out_of_hull,
                                       bool* missing_corner) const {
  AdvisorAnswer answer;
  answer.source = "interpolated";

  std::vector<AxisBracket> brackets(grid.axes.size());
  for (std::size_t a = 0; a < grid.axes.size(); ++a) {
    const std::vector<double>& axis = grid.axis_values[a];
    const double v = values[a];
    if (axis.empty() || v < axis.front() || v > axis.back()) {
      *out_of_hull = true;
      return answer;
    }
    const auto it = std::lower_bound(axis.begin(), axis.end(), v);
    const std::size_t hi = static_cast<std::size_t>(it - axis.begin());
    AxisBracket& bracket = brackets[a];
    if (*it == v) {
      bracket.lo = bracket.hi = hi;
      bracket.t = 0.0;
    } else {
      bracket.lo = hi - 1;
      bracket.hi = hi;
      bracket.t = (v - axis[bracket.lo]) / (axis[hi] - axis[bracket.lo]);
    }
  }

  // Gather the stencil: up to 2^d corners, zero-weight corners skipped (an
  // on-grid coordinate degenerates that axis to its single exact value).
  struct Corner {
    double weight;
    const exp::LoadedPoint* point;
  };
  std::vector<Corner> corners;
  const std::size_t n_axes = grid.axes.size();
  std::vector<std::size_t> idx(n_axes);
  for (std::size_t mask = 0; mask < (std::size_t{1} << n_axes); ++mask) {
    double weight = 1.0;
    for (std::size_t a = 0; a < n_axes; ++a) {
      const bool high = (mask >> a) & 1;
      weight *= high ? brackets[a].t : 1.0 - brackets[a].t;
      idx[a] = high ? brackets[a].hi : brackets[a].lo;
    }
    if (weight == 0.0) continue;
    const std::size_t flat = grid.flat_index(idx);
    if (!grid.filled[flat]) {
      *missing_corner = true;
      return answer;
    }
    corners.push_back(Corner{weight, &grid.cells[flat]});
  }

  // Per strategy: value = Σ wᵢ·meanᵢ; corners are independent campaigns, so
  // the interpolated mean's variance is Σ (wᵢ·seᵢ)².
  for (const std::string& name : grid.strategies) {
    StrategyEstimate estimate;
    estimate.strategy = name;
    double variance = 0.0;
    for (const Corner& corner : corners) {
      const exp::LoadedStrategy* strat = nullptr;
      for (const exp::LoadedStrategy& s : corner.point->strategies) {
        if (s.name == name) {
          strat = &s;
          break;
        }
      }
      COOPCR_CHECK(strat != nullptr, "grid \"" + grid.experiment +
                                         "\" corner misses strategy \"" +
                                         name + "\"");
      const exp::LoadedSummary& summary = strat->metric(metric);
      estimate.value += corner.weight * summary.candle.mean;
      variance += corner.weight * corner.weight * summary.se * summary.se;
    }
    estimate.se = std::sqrt(variance);
    estimate.ci_halfwidth = kZ95 * estimate.se;
    answer.ranking.push_back(std::move(estimate));
  }
  sort_ranking(answer.ranking, metric_higher_is_better(metric));
  return answer;
}

AdvisorAnswer QueryEngine::compute(const StoredGrid& grid,
                                   const std::vector<double>& values,
                                   const std::string& metric) {
  const exp::NamedSpec* entry =
      exp::find_spec_by_experiment(grid.experiment);
  COOPCR_CHECK(entry != nullptr,
               "query needs a fallback campaign but experiment \"" +
                   grid.experiment +
                   "\" has no spec-registry entry to rebuild from");

  const int replicas = options_.fallback_replicas > 0
                           ? options_.fallback_replicas
                           : grid.replicas;
  exp::ExperimentSpec spec = entry->build(replicas);
  spec.clear_axes();
  for (std::size_t a = 0; a < grid.axes.size(); ++a) {
    spec.named_axis(grid.axes[a], {values[a]});
  }
  if (options_.fallback_target_ci > 0.0) {
    MonteCarloOptions mc = spec.campaign_options();
    mc.target_ci_width = options_.fallback_target_ci;
    spec.options(mc);
  }

  const std::unique_ptr<exp::SweepExecutor> executor =
      exp::make_sweep_executor(options_.executor);
  const exp::ExperimentReport report = executor->run(spec);
  COOPCR_CHECK(report.points.size() == 1,
               "fallback campaign produced " +
                   std::to_string(report.points.size()) +
                   " points, expected 1");

  AdvisorAnswer answer;
  answer.source = "computed";
  answer.backend = executor->backend_name();
  const exp::Metric metric_id = metric_from_name(metric);
  for (const StrategyOutcome& outcome :
       report.points.front().report.outcomes) {
    const SampleSet& samples = exp::metric_samples(outcome, metric_id);
    StrategyEstimate estimate;
    estimate.strategy = outcome.strategy.name();
    estimate.value = samples.mean();
    estimate.se = samples.size() >= 2
                      ? samples.stddev() /
                            std::sqrt(static_cast<double>(samples.size()))
                      : 0.0;
    estimate.ci_halfwidth = kZ95 * estimate.se;
    answer.ranking.push_back(std::move(estimate));
  }
  sort_ranking(answer.ranking, metric_higher_is_better(metric));
  return answer;
}

void QueryEngine::attach_best_periods(const StoredGrid& grid,
                                      const std::vector<double>& values,
                                      AdvisorAnswer& answer) const {
  if (answer.ranking.empty()) return;
  const exp::NamedSpec* entry =
      exp::find_spec_by_experiment(grid.experiment);
  if (entry == nullptr) return;
  // Best-effort: a non-rebuildable axis or an unregistered strategy name
  // leaves the periods out rather than failing an otherwise-good answer.
  try {
    exp::ExperimentSpec spec =
        entry->build(std::max(1, grid.replicas));
    spec.clear_axes();
    for (std::size_t a = 0; a < grid.axes.size(); ++a) {
      spec.named_axis(grid.axes[a], {values[a]});
    }
    const std::vector<exp::GridPoint> points = spec.expand();
    if (points.empty()) return;
    const Strategy best = strategy_from_name(answer.ranking.front().strategy);
    const ScenarioConfig& scenario = points.front().scenario;
    for (const ApplicationClass& app : scenario.applications) {
      const ClassOnPlatform cls = resolve(app, scenario.platform);
      answer.best_periods.push_back(
          AppPeriod{app.name, best.period().period_for(cls)});
    }
  } catch (const Error&) {
    answer.best_periods.clear();
  }
}

}  // namespace coopcr::serve
