// coopcr/serve/query_cache.hpp
//
// Digest-keyed LRU cache of rendered advisor answers.
//
// The cache stores the *rendered* answer text, not the AdvisorAnswer
// object: a hit returns the exact bytes the first evaluation produced, so
// repeated queries are byte-identical by construction — the determinism
// contract cli/coopcr_advisor's golden tests pin down. Keys are
// AdvisorQuery::digest() (fnv1a64 over the canonical query text, which
// sorts coords, so coordinate order does not fragment the cache).

#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace coopcr::serve {

/// Fixed-capacity LRU map: query digest -> rendered answer JSON.
class QueryCache {
 public:
  /// `capacity` 0 disables caching (every lookup misses, inserts no-op).
  explicit QueryCache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// The cached answer for `digest`, or nullptr on a miss. A hit marks the
  /// entry most-recently-used. Counts toward hits()/misses().
  const std::string* lookup(std::uint64_t digest);

  /// Insert (or refresh) the answer for `digest`, evicting the
  /// least-recently-used entry when full.
  void insert(std::uint64_t digest, std::string answer_json);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::uint64_t digest;
    std::string answer;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace coopcr::serve
