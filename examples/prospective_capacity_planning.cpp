// prospective_capacity_planning — the §6.2 question, productised:
// "How much aggregated filesystem bandwidth must I buy so the platform
// sustains a target efficiency under checkpoint/restart?"
//
// For a chosen platform size, node MTBF and target efficiency, this example
// (1) solves the Theorem 1 model for the minimum bandwidth, (2) verifies the
// answer by simulation under the best strategy (Least-Waste) and the status
// quo (Oblivious-Fixed), and (3) prints how much bandwidth the status quo
// over-provisions.
//
// Usage:
//   prospective_capacity_planning [--nodes N] [--memory-pb M]
//       [--mtbf-years Y] [--efficiency E] [--replicas R]

#include <cstdlib>
#include <iostream>
#include <string>

#include "coopcr.hpp"

using namespace coopcr;

namespace {

double arg_double(int argc, char** argv, const std::string& flag,
                  double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::atof(argv[i + 1]);
  }
  return fallback;
}

double simulated_min_bandwidth(const PlatformSpec& base,
                               const std::vector<ApplicationClass>& apps,
                               const Strategy& strategy, double target_waste,
                               const MonteCarloOptions& options) {
  return bisect_threshold(
      [&](double bw) {
        const ScenarioConfig sc = ScenarioBuilder()
                                      .platform(base)
                                      .pfs_bandwidth(bw)
                                      .applications(apps)
                                      .seed(0xCAFEull)
                                      .build();
        const auto report = run_monte_carlo(sc, {strategy}, options);
        return report.outcomes[0].waste_ratio.mean() <= target_waste;
      },
      units::tb_per_s(0.1), units::tb_per_s(60), units::tb_per_s(0.25));
}

}  // namespace

int main(int argc, char** argv) {
  PlatformSpec platform = PlatformSpec::prospective();
  platform.nodes =
      static_cast<std::int64_t>(arg_double(argc, argv, "--nodes", 50000.0));
  platform.memory_bytes =
      units::petabytes(arg_double(argc, argv, "--memory-pb", 7.0));
  platform.node_mtbf =
      units::years(arg_double(argc, argv, "--mtbf-years", 10.0));
  const double efficiency = arg_double(argc, argv, "--efficiency", 0.80);
  const double target_waste = 1.0 - efficiency;
  const int replicas =
      static_cast<int>(arg_double(argc, argv, "--replicas", 4.0));

  const auto apps =
      project_workload(apex_lanl_classes(), PlatformSpec::cielo(), platform);

  std::cout << "Capacity planning for '" << platform.name << "': "
            << platform.nodes << " nodes, "
            << platform.memory_bytes / units::kPB << " PB memory, node MTBF "
            << platform.node_mtbf / units::kYear << " y (system MTBF "
            << TablePrinter::fmt(platform.system_mtbf() / units::kHour, 2)
            << " h)\nTarget efficiency: " << efficiency * 100 << "%\n\n";

  const double model_beta = min_bandwidth_for_waste(
      platform, apps, target_waste, units::tb_per_s(0.1),
      units::tb_per_s(60));

  const MonteCarloOptions options = MonteCarloOptions::from_env(replicas);
  const double lw_beta = simulated_min_bandwidth(
      platform, apps, least_waste(), target_waste, options);
  const double status_quo_beta = simulated_min_bandwidth(
      platform, apps, oblivious_fixed(), target_waste, options);

  TablePrinter table({"approach", "min bandwidth (TB/s)"});
  table.add_row({"Theorem 1 model (lower bound)",
                 TablePrinter::fmt(model_beta / units::kTB, 2)});
  table.add_row({"Least-Waste (simulated)",
                 TablePrinter::fmt(lw_beta / units::kTB, 2)});
  table.add_row({"Oblivious-Fixed status quo (simulated)",
                 TablePrinter::fmt(status_quo_beta / units::kTB, 2)});
  table.print(std::cout);

  std::cout << "\nCooperative checkpoint scheduling lets the platform hit "
            << efficiency * 100 << "% efficiency with "
            << TablePrinter::fmt(status_quo_beta / lw_beta, 1)
            << "x less I/O bandwidth than the uncoordinated fixed-interval "
               "status quo\n(paper §6.2: \"whether by integrating I/O-aware "
               "scheduling strategies or by\nsignificantly over-provisioning "
               "the I/O partition\").\n";
  return 0;
}
