// sweep_study — a custom two-axis experiment through the coopcr.hpp facade.
//
// The paper's figures sweep one knob at a time; the exp layer makes a
// multi-axis study one spec literal. This example crosses the aggregated
// PFS bandwidth with the PFS interference model (the footnote-2 adversarial
// ablation axis) and evaluates a serialised strategy against an oblivious
// one at every grid point:
//
//   * axes:       pfs_bandwidth_gbps x interference_alpha  (2 x 3 grid)
//   * strategies: Ordered-NB-Daly, Oblivious-Daly
//   * execution:  every (grid point x replica) task runs on one shared
//                 thread pool; reports are bit-identical for any pool size.
//
// It also shows a hand-rolled axis (the generic ExperimentSpec::axis
// overload) for a knob the library has no named convenience for — the
// measured segment length — and the structured CSV/JSON emission.
//
// Usage: sweep_study            (COOPCR_REPLICAS / COOPCR_THREADS honoured)

#include <iostream>

#include "coopcr.hpp"

using namespace coopcr;

int main() {
  const auto options = MonteCarloOptions::from_env(/*default_replicas=*/4);

  // Base scenario: Cielo + APEX at the stressed operating point, shortened
  // so the example runs in seconds.
  ScenarioBuilder base = ScenarioBuilder::cielo_apex()
                             .node_mtbf(units::years(2))
                             .min_makespan(units::days(8))
                             .segment(units::days(1), units::days(7));

  exp::ExperimentSpec spec(base, "sweep_study");
  spec.pfs_bandwidth_axis({40, 120})
      .interference_axis({0.0, 0.5, 1.0})
      .strategies({ordered_nb_daly(), oblivious_daly()})
      .options(options);

  std::cout << "sweep_study: " << spec.grid_size() << " grid points x "
            << options.replicas << " replicas x "
            << spec.strategy_set().size() << " strategies\n\n";

  exp::SweepRunner runner(options.threads);
  runner.on_point([](const exp::GridPoint& point, const MonteCarloReport&) {
    std::cerr << "[sweep_study] " << point.label() << " done\n";
  });
  const exp::ExperimentReport report = runner.run(spec);

  // Per-alpha tables: the bandwidth axis is x, one series per strategy.
  for (const double alpha : {0.0, 0.5, 1.0}) {
    std::vector<exp::FigureRow> rows;
    for (const auto& pr : report.points) {
      if (pr.point.coord("interference_alpha").value != alpha) continue;
      const double gbps = pr.point.coord("pfs_bandwidth_gbps").value;
      for (const auto& outcome : pr.report.outcomes) {
        rows.push_back(exp::FigureRow{gbps, outcome.strategy.name(),
                                      outcome.waste_ratio.candlestick()});
      }
    }
    exp::Figure fig{"sweep_study_alpha_" + TablePrinter::fmt(alpha, 1),
                    "Waste ratio, interference alpha = " +
                        TablePrinter::fmt(alpha, 1),
                    "bandwidth (GB/s)", "waste ratio", rows};
    fig.print(std::cout);
    std::cout << "\n";
  }

  // A custom axis with the generic overload: sweep the measured segment
  // length. Any ScenarioBuilder edit can be an axis — this is the extension
  // point for future studies (energy-aware period axes, storage tiers, ...).
  exp::ExperimentSpec custom(base, "sweep_study_segment");
  custom
      .axis("segment_days", {4, 6},
            [](ScenarioBuilder& b, double days) {
              b.min_makespan(units::days(days + 1.0))
                  .segment(units::days(1), units::days(days + 1.0));
            })
      .strategies({least_waste()})
      .options(options);
  const exp::ExperimentReport segments = runner.run(custom);
  for (const auto& pr : segments.points) {
    std::cout << "segment " << pr.point.coord("segment_days").label
              << " days: Least-Waste waste ratio mean = "
              << TablePrinter::fmt(
                     pr.report.outcome("Least-Waste").waste_ratio.mean(), 4)
              << " (" << pr.report.replicas << " replicas)\n";
  }

  // Structured artifacts (COOPCR_CSV_DIR): long-format CSV + JSON.
  if (const auto path = report.emit_csv()) {
    std::cout << "\n[csv] wrote " << *path << "\n";
  }
  if (const auto path = report.emit_json()) {
    std::cout << "[json] wrote " << *path << "\n";
  }
  return 0;
}
