// quickstart — the smallest end-to-end use of the coopcr public API.
//
// Builds the Cielo/APEX scenario of the paper, runs one Monte Carlo replica
// of two strategies (the status quo and the paper's contribution), and
// prints their waste ratios next to the analytical lower bound.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/lower_bound.hpp"
#include "core/monte_carlo.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/apex.hpp"

using namespace coopcr;

int main() {
  // 1. Describe the platform and the workload (paper Table 1 on Cielo, with
  //    the bandwidth-starved 40 GB/s operating point of Figure 2).
  ScenarioConfig scenario;
  scenario.platform = PlatformSpec::cielo();
  scenario.platform.pfs_bandwidth = units::gb_per_s(40);
  scenario.applications = apex_lanl_classes();
  scenario.seed = 42;
  scenario.finalize();

  // 2. Pick strategies: the uncoordinated status quo vs the paper's
  //    cooperative Least-Waste scheduler.
  const Strategy oblivious{IoMode::kOblivious, CheckpointPolicy::kFixed};
  const Strategy least_waste{IoMode::kLeastWaste, CheckpointPolicy::kDaly};

  // 3. Run one replica each (same initial conditions — paired comparison).
  const ReplicaRun status_quo = run_replica(scenario, oblivious, /*replica=*/0);
  const ReplicaRun cooperative =
      run_replica(scenario, least_waste, /*replica=*/0);

  // 4. Compare against the Theorem 1 analytical bound.
  const double bound = lower_bound_waste(scenario.platform,
                                         scenario.applications,
                                         scenario.platform.pfs_bandwidth);

  TablePrinter table({"strategy", "waste ratio", "jobs done", "failures hit",
                      "checkpoints"});
  auto row = [&](const std::string& name, const ReplicaRun& run) {
    table.add_row({name, TablePrinter::fmt(run.waste_ratio, 4),
                   std::to_string(run.result.counters.jobs_completed),
                   std::to_string(run.result.counters.failures_on_jobs),
                   std::to_string(run.result.counters.checkpoints_completed)});
  };
  row(oblivious.name(), status_quo);
  row(least_waste.name(), cooperative);
  table.add_row({"Theoretical Model", TablePrinter::fmt(bound, 4), "-", "-",
                 "-"});

  std::cout << "coopcr quickstart — Cielo + APEX workload @ 40 GB/s, node "
               "MTBF 2 years\n\n";
  table.print(std::cout);
  std::cout << "\nLeast-Waste should sit close to the theoretical bound; the "
               "oblivious fixed-period\nstatus quo wastes several times "
               "more node-hours (paper Figs. 1-2).\n";
  return 0;
}
