// quickstart — the smallest end-to-end use of the coopcr public API.
//
// The whole public surface comes in through one facade header, coopcr.hpp:
//
//  * ScenarioBuilder       — fluent scenario construction; presets
//                            (cielo_apex, prospective_apex) give the paper's
//                            settings, chainable setters tweak them, and
//                            build() validates + resolves everything.
//  * StrategySpec          — a strategy is a composition of three policy
//                            objects (I/O coordination, checkpoint period,
//                            request offset). The paper's seven strategies
//                            are prebuilt (paper_strategies(), or factories
//                            such as oblivious_fixed() / least_waste());
//                            custom ones compose policies from the
//                            registries in core/policy.hpp.
//  * run_replica /         — paired Monte Carlo evaluation: all strategies
//    run_monte_carlo         of a replica share initial conditions.
//
// This example builds the Cielo/APEX scenario of the paper, runs one Monte
// Carlo replica of two strategies (the status quo and the paper's
// contribution), and prints their waste ratios next to the analytical lower
// bound.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart

#include <iostream>

#include "coopcr.hpp"

using namespace coopcr;

int main() {
  // 1. Describe the platform and the workload (paper Table 1 on Cielo, with
  //    the bandwidth-starved 40 GB/s operating point of Figure 2).
  const ScenarioConfig scenario = ScenarioBuilder::cielo_apex()
                                      .pfs_bandwidth(units::gb_per_s(40))
                                      .seed(42)
                                      .build();

  // 2. Pick strategies: the uncoordinated status quo vs the paper's
  //    cooperative Least-Waste scheduler. (These are registry-backed
  //    compositions — strategy_from_name("Least-Waste") works too.)
  const StrategySpec status_quo_spec = oblivious_fixed();
  const StrategySpec cooperative_spec = least_waste();

  // 3. Run one replica each (same initial conditions — paired comparison).
  const ReplicaRun status_quo =
      run_replica(scenario, status_quo_spec, /*replica=*/0);
  const ReplicaRun cooperative =
      run_replica(scenario, cooperative_spec, /*replica=*/0);

  // 4. Compare against the Theorem 1 analytical bound.
  const double bound = lower_bound_waste(scenario.platform,
                                         scenario.applications,
                                         scenario.platform.pfs_bandwidth);

  TablePrinter table({"strategy", "waste ratio", "jobs done", "failures hit",
                      "checkpoints"});
  auto row = [&](const std::string& name, const ReplicaRun& run) {
    table.add_row({name, TablePrinter::fmt(run.waste_ratio, 4),
                   std::to_string(run.result.counters.jobs_completed),
                   std::to_string(run.result.counters.failures_on_jobs),
                   std::to_string(run.result.counters.checkpoints_completed)});
  };
  row(status_quo_spec.name(), status_quo);
  row(cooperative_spec.name(), cooperative);
  table.add_row({"Theoretical Model", TablePrinter::fmt(bound, 4), "-", "-",
                 "-"});

  std::cout << "coopcr quickstart — Cielo + APEX workload @ 40 GB/s, node "
               "MTBF 2 years\n\n";
  table.print(std::cout);
  std::cout << "\nLeast-Waste should sit close to the theoretical bound; the "
               "oblivious fixed-period\nstatus quo wastes several times "
               "more node-hours (paper Figs. 1-2).\n";
  return 0;
}
