// Example: energy accounting and the energy-aware cooperative strategy.
//
// Demonstrates the energy subsystem end to end through the facade:
//
//   1. attach a custom PowerProfile to a scenario (per-node watts for
//      compute / I/O / checkpoint / idle activity);
//   2. run a Monte Carlo campaign and read the new energy outcomes
//      (joules and energy-waste ratio) next to the time-waste ratio;
//   3. show the Aupy et al. energy-optimal period at work: "coop-energy"
//      stretches each class's Daly period by sqrt(P_ckpt / P_compute).
//
// Build & run:  ./energy_study   (COOPCR_REPLICAS to rescale)

#include <iostream>

#include "coopcr.hpp"

using namespace coopcr;

int main() {
  // An I/O-power-heavy machine: checkpoint transfers draw twice the compute
  // power per node (disk arrays + network fully active).
  PowerProfile power;
  power.compute_watts = 200.0;
  power.io_watts = 400.0;
  power.checkpoint_watts = 400.0;
  power.idle_watts = 80.0;

  const ScenarioConfig scenario = ScenarioBuilder::cielo_apex()
                                      .pfs_bandwidth(units::gb_per_s(80))
                                      .node_mtbf(units::years(2))
                                      .power_profile(power)
                                      .min_makespan(units::days(10))
                                      .segment(units::days(1), units::days(9))
                                      .build();

  // The energy-aware period adapts per class: P_E = P_Daly * sqrt(400/200).
  std::cout << "Energy-optimal periods (vs Daly):\n";
  const auto energy = energy_period();
  for (const ClassOnPlatform& cls : scenario.simulation.classes) {
    std::cout << "  " << cls.app.name << ": " << energy->period_for(cls)
              << " s vs " << cls.daly_period << " s\n";
  }

  const std::vector<Strategy> strategies = {
      oblivious_daly(), least_waste(), strategy_from_name("coop-energy")};
  const MonteCarloReport report = run_monte_carlo(
      scenario, strategies, MonteCarloOptions::from_env(/*default_replicas=*/4));

  std::cout << "\nTime vs energy waste (" << report.replicas
            << " replicas, P_io/P_compute = 2):\n";
  TablePrinter table({"strategy", "waste ratio", "energy waste ratio",
                      "gigajoules"});
  for (const StrategyOutcome& outcome : report.outcomes) {
    table.add_row({outcome.strategy.name(),
                   TablePrinter::fmt(outcome.waste_ratio.mean(), 4),
                   TablePrinter::fmt(outcome.energy_waste_ratio.mean(), 4),
                   TablePrinter::fmt(outcome.energy_joules.mean() / 1e9, 1)});
  }
  table.print(std::cout);

  const double coop = report.outcome("coop-energy").energy_waste_ratio.mean();
  const double lw = report.outcome("Least-Waste").energy_waste_ratio.mean();
  std::cout << "\ncoop-energy saves "
            << (lw > 0.0 ? (lw - coop) / lw * 100.0 : 0.0)
            << "% of Least-Waste's energy waste on this machine.\n";
  return 0;
}
