// cielo_apex_study — interactive study of the paper's §6.1 setting.
//
// Runs a Monte Carlo campaign of all seven strategies on Cielo with the
// APEX workload at a chosen (bandwidth, node-MTBF) operating point and
// prints the waste-ratio candlesticks plus the per-category node-time
// breakdown that explains *where* each strategy loses its node-hours.
//
// Usage:
//   cielo_apex_study [--bandwidth-gbps B] [--mtbf-years Y]
//                    [--replicas N] [--seed S]
//
// Example:
//   ./build/examples/cielo_apex_study --bandwidth-gbps 40 --mtbf-years 2

#include <cstdlib>
#include <iostream>
#include <string>

#include "coopcr.hpp"

using namespace coopcr;

namespace {

double arg_double(int argc, char** argv, const std::string& flag,
                  double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::atof(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const double bandwidth_gbps =
      arg_double(argc, argv, "--bandwidth-gbps", 40.0);
  const double mtbf_years = arg_double(argc, argv, "--mtbf-years", 2.0);
  const int replicas =
      static_cast<int>(arg_double(argc, argv, "--replicas", 10.0));
  const auto seed = static_cast<std::uint64_t>(
      arg_double(argc, argv, "--seed", 42.0));

  const ScenarioConfig scenario =
      ScenarioBuilder::cielo_apex(seed)
          .pfs_bandwidth(units::gb_per_s(bandwidth_gbps))
          .node_mtbf(units::years(mtbf_years))
          .build();

  std::cout << "Cielo / APEX study — " << bandwidth_gbps
            << " GB/s aggregated PFS, node MTBF " << mtbf_years
            << " y (system MTBF "
            << TablePrinter::fmt(scenario.platform.system_mtbf() / units::kHour,
                                 2)
            << " h), " << replicas << " replicas\n\n";

  MonteCarloOptions options = MonteCarloOptions::from_env(replicas);
  options.keep_results = true;
  const auto report =
      run_monte_carlo(scenario, paper_strategies(), options);

  TablePrinter summary({"strategy", "waste (mean)", "d1", "d9", "utilization",
                        "ckpts/replica", "failures-hit"});
  for (const auto& outcome : report.outcomes) {
    const Candlestick c = outcome.waste_ratio.candlestick();
    summary.add_row({outcome.strategy.name(), TablePrinter::fmt(c.mean, 4),
                     TablePrinter::fmt(c.d1, 4), TablePrinter::fmt(c.d9, 4),
                     TablePrinter::fmt(outcome.utilization.mean(), 4),
                     TablePrinter::fmt(outcome.checkpoints.mean(), 0),
                     TablePrinter::fmt(outcome.failures_hit.mean(), 0)});
  }
  summary.print(std::cout);

  const double bound = lower_bound_waste(scenario.platform,
                                         scenario.applications,
                                         scenario.platform.pfs_bandwidth);
  std::cout << "\nTheorem 1 lower bound at this operating point: "
            << TablePrinter::fmt(bound, 4) << "\n\n";

  // Node-hour breakdown (averaged over replicas), normalised by the
  // baseline's useful node-time: shows where each strategy loses time.
  std::cout << "Per-category node-time shares (fraction of baseline useful "
               "work):\n\n";
  TablePrinter breakdown({"strategy", "compute", "io", "ckpt", "wait",
                          "dilation", "recovery", "lost"});
  const double baseline = report.baseline_useful.mean();
  for (const auto& outcome : report.outcomes) {
    double totals[static_cast<int>(TimeCategory::kCount)] = {};
    for (const auto& result : outcome.results) {
      for (int c = 0; c < static_cast<int>(TimeCategory::kCount); ++c) {
        totals[c] += result.accounting.total(static_cast<TimeCategory>(c));
      }
    }
    const auto share = [&](TimeCategory c) {
      return TablePrinter::fmt(
          totals[static_cast<int>(c)] /
              static_cast<double>(outcome.results.size()) / baseline,
          4);
    };
    breakdown.add_row({outcome.strategy.name(),
                       share(TimeCategory::kUsefulCompute),
                       share(TimeCategory::kUsefulIo),
                       share(TimeCategory::kCheckpoint),
                       share(TimeCategory::kBlockedWait),
                       share(TimeCategory::kIoDilation),
                       share(TimeCategory::kRecovery),
                       share(TimeCategory::kLostWork)});
  }
  breakdown.print(std::cout);
  std::cout << "\nReading guide: *-Fixed strategies burn node-hours in "
               "checkpoint commits and\nwaits; Oblivious strategies in I/O "
               "dilation; the non-blocking strategies trade\na little extra "
               "lost work for far less idle time (paper §6.1).\n";
  return 0;
}
