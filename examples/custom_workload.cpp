// custom_workload — defining your own platform and application classes.
//
// The paper's machinery is not tied to the APEX workload: this example
// models a mid-size cluster running a mix of (a) large ML training jobs
// with heavy checkpoints and (b) small data-analytics jobs with heavy
// output, then asks which scheduling strategy the operator should deploy
// and how far it sits from the analytical optimum.
//
// Usage: custom_workload [--replicas N]

#include <cstdlib>
#include <iostream>
#include <string>

#include "coopcr.hpp"

using namespace coopcr;

namespace {

double arg_double(int argc, char** argv, const std::string& flag,
                  double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::atof(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int replicas =
      static_cast<int>(arg_double(argc, argv, "--replicas", 10.0));

  // 1. The machine: 4,096 nodes, 512 TB of memory, a 20 GB/s PFS and a node
  //    MTBF of 8 years (system MTBF ~17 h).
  PlatformSpec cluster;
  cluster.name = "ml-cluster";
  cluster.nodes = 4096;
  cluster.cores_per_node = 32;
  cluster.memory_bytes = units::terabytes(512);
  cluster.pfs_bandwidth = units::gb_per_s(20);
  cluster.node_mtbf = units::years(8);

  // 2. The workload. Percentages are fractions of each job's memory
  //    footprint, exactly like Table 1 of the paper.
  ApplicationClass training;
  training.name = "ml-training";
  training.workload_share = 0.70;
  training.work_seconds = units::hours(96);
  training.cores = 16384;            // 512 nodes per job
  training.input_fraction = 0.20;    // dataset shards
  training.output_fraction = 0.50;   // final model + optimizer state
  training.checkpoint_fraction = 1.0;
  training.routine_io_fraction = 0.25;  // periodic evaluation dumps

  ApplicationClass analytics;
  analytics.name = "analytics";
  analytics.workload_share = 0.30;
  analytics.work_seconds = units::hours(8);
  analytics.cores = 2048;            // 64 nodes per job
  analytics.input_fraction = 0.50;
  analytics.output_fraction = 0.80;
  analytics.checkpoint_fraction = 0.40;

  const ScenarioConfig scenario = ScenarioBuilder()
                                      .platform(cluster)
                                      .add_application(training)
                                      .add_application(analytics)
                                      .min_makespan(units::days(30))
                                      .segment(units::days(1), units::days(29))
                                      .seed(2024)
                                      .build();

  std::cout << "Custom workload on '" << cluster.name << "' (" << cluster.nodes
            << " nodes, " << cluster.pfs_bandwidth / units::kGB
            << " GB/s PFS)\n\n";

  // Per-class paper quantities, straight from the resolved classes.
  TablePrinter classes_table({"class", "nodes/job", "ckpt (TB)", "C (s)",
                              "mu_i (h)", "P_Daly (s)"});
  for (const auto& cls : scenario.simulation.classes) {
    classes_table.add_row(
        {cls.app.name, std::to_string(cls.nodes),
         TablePrinter::fmt(cls.checkpoint_bytes / units::kTB, 2),
         TablePrinter::fmt(cls.checkpoint_seconds, 1),
         TablePrinter::fmt(cls.mtbf / units::kHour, 1),
         TablePrinter::fmt(cls.daly_period, 0)});
  }
  classes_table.print(std::cout);

  // 3. Evaluate every strategy.
  const auto options = MonteCarloOptions::from_env(replicas);
  const auto report = run_monte_carlo(scenario, paper_strategies(), options);

  std::cout << "\nStrategy comparison (" << options.replicas
            << " replicas):\n\n";
  TablePrinter results({"strategy", "waste (mean)", "q1", "q3"});
  const StrategyOutcome* best = nullptr;
  for (const auto& outcome : report.outcomes) {
    const Candlestick c = outcome.waste_ratio.candlestick();
    results.add_row({outcome.strategy.name(), TablePrinter::fmt(c.mean, 4),
                     TablePrinter::fmt(c.q1, 4), TablePrinter::fmt(c.q3, 4)});
    if (best == nullptr ||
        c.mean < best->waste_ratio.mean()) {
      best = &outcome;
    }
  }
  results.print(std::cout);

  const auto bound = solve_lower_bound(scenario.platform,
                                       scenario.applications,
                                       scenario.platform.pfs_bandwidth);
  std::cout << "\nTheorem 1 bound: " << TablePrinter::fmt(bound.waste, 4)
            << (bound.io_constrained
                    ? " (I/O-constrained: optimal periods exceed Young/Daly)"
                    : " (Young/Daly periods feasible)")
            << "\nRecommended strategy: " << best->strategy.name() << " at "
            << TablePrinter::fmt(best->waste_ratio.mean(), 4)
            << " mean waste.\n"
            << "\nNote: the Theorem 1 bound models checkpoint traffic only "
               "(§4 assumes input/output\nI/O spans the whole run). When "
               "regular I/O dominates the channel — crank up the\nanalytics "
               "output fractions to see it — simulated waste decouples from "
               "the bound\nand strategy choice is driven by ordinary I/O "
               "scheduling, not by CR policy.\n";
  return 0;
}
