// Example: tiered checkpoint storage (burst-buffer commits) end to end.
//
// Demonstrates the storage-tier subsystem through the facade:
//
//   1. put a burst buffer in front of the PFS with
//      ScenarioBuilder::burst_buffer(capacity_factor, bandwidth);
//   2. turn any strategy into its tiered twin — with_commit(tiered_commit())
//      or the "-tiered" name suffix ("coop-daly-tiered");
//   3. read the commit-path counters (absorbs, drains, fallbacks, drains
//      lost to failures) and the blocked-commit waste next to the total
//      waste ratio.
//
// Build & run:  ./tiered_storage_study   (COOPCR_REPLICAS to rescale)

#include <iostream>

#include "coopcr.hpp"

using namespace coopcr;

int main() {
  // Cielo with a 400 GB/s fast tier sized to hold the workload's whole
  // checkpoint working set (capacity factor 1).
  const ScenarioConfig scenario = ScenarioBuilder::cielo_apex()
                                      .pfs_bandwidth(units::gb_per_s(40))
                                      .node_mtbf(units::years(2))
                                      .burst_buffer(/*capacity_factor=*/1.0,
                                                    units::gb_per_s(400))
                                      .min_makespan(units::days(10))
                                      .segment(units::days(1), units::days(9))
                                      .build();
  std::cout << "Burst buffer: "
            << scenario.simulation.burst_buffer.capacity / units::kTB
            << " TB @ "
            << scenario.simulation.burst_buffer.bandwidth / units::kGB
            << " GB/s in front of a "
            << scenario.platform.pfs_bandwidth / units::kGB << " GB/s PFS\n\n";

  const std::vector<Strategy> strategies = {
      least_waste(),
      strategy_from_name("coop-daly-tiered"),  // Least-Waste-tiered
      ordered_nb_daly(),
      ordered_nb_daly().with_commit(tiered_commit()),
  };
  MonteCarloOptions options = MonteCarloOptions::from_env(4);
  options.keep_results = true;  // per-replica counters for the drain stats
  const MonteCarloReport report =
      run_monte_carlo(scenario, strategies, options);

  std::cout << "Commit-path comparison (" << report.replicas
            << " replicas):\n";
  TablePrinter table({"strategy", "blocked-commit waste", "waste ratio",
                      "absorbs", "drains lost", "fallbacks"});
  for (const StrategyOutcome& outcome : report.outcomes) {
    std::uint64_t absorbs = 0, lost = 0, fallbacks = 0;
    for (const SimulationResult& r : outcome.results) {
      absorbs += r.counters.bb_absorbs;
      lost += r.counters.bb_drains_aborted;
      fallbacks += r.counters.bb_fallbacks;
    }
    table.add_row({outcome.strategy.name(),
                   TablePrinter::fmt(outcome.ckpt_waste_ratio.mean(), 4),
                   TablePrinter::fmt(outcome.waste_ratio.mean(), 4),
                   std::to_string(absorbs), std::to_string(lost),
                   std::to_string(fallbacks)});
  }
  table.print(std::cout);

  const double direct = report.outcome("Least-Waste").ckpt_waste_ratio.mean();
  const double tiered =
      report.outcome("Least-Waste-tiered").ckpt_waste_ratio.mean();
  std::cout << "\nTiered commits cut the time applications spend blocked in "
            << "checkpoint commits by "
            << (direct > 0.0 ? (direct - tiered) / direct * 100.0 : 0.0)
            << "%.\nThe *total* waste ratio moves less (or the other way): "
            << "drains still occupy the PFS,\nand a failure before the drain "
            << "finishes re-executes from the last drained snapshot\n— see "
            << "the A4 reading guide in EXPERIMENTS.md.\n";
  return 0;
}
