// custom_strategy — defining and running new strategies through the registry,
// without touching core/strategy.* or core/policy.*.
//
// Two extension levels are shown:
//
//  1. Recomposition: "Smallest-First-Daly" — the built-in smallest-transfer-
//     first token arbiter (an SJF-like ablation baseline) composed with Daly
//     periods and the (P - C) request offset, registered under its own name.
//
//  2. A genuinely new policy: "Largest-First-Daly" — a custom TokenPolicy
//     subclass defined *in this file*, wrapped in a SerialCoordination and
//     registered in the coordination registry, then composed into a strategy.
//
// Both are then reachable by name via strategy_from_name() and run head to
// head against two paper baselines on the stressed Cielo operating point.
//
// Usage: custom_strategy [--replicas N]

#include <cstdlib>
#include <iostream>
#include <string>

#include "coopcr.hpp"

using namespace coopcr;

namespace {

double arg_double(int argc, char** argv, const std::string& flag,
                  double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::atof(argv[i + 1]);
  }
  return fallback;
}

/// A token arbiter the core library does not ship: always grant the largest
/// pending transfer (an adversarial anti-SJF baseline).
class LargestFirstPolicy final : public TokenPolicy {
 public:
  std::size_t select(const std::vector<PendingEntry>& pending,
                     sim::Time /*now*/) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      if (pending[i].request.volume > pending[best].request.volume) best = i;
    }
    return best;
  }
  std::string name() const override { return "largest-first"; }
};

}  // namespace

int main(int argc, char** argv) {
  const int replicas =
      static_cast<int>(arg_double(argc, argv, "--replicas", 10.0));

  // --- extension level 1: recompose built-in policies ------------------------
  strategy_registry().add(StrategySpec{smallest_first_coordination(),
                                       daly_period(),
                                       period_minus_commit_offset()});

  // --- extension level 2: register a brand-new coordination policy -----------
  const auto largest_first = std::make_shared<const SerialCoordination>(
      "Largest-First", /*non_blocking_wait=*/true,
      [](const TokenPolicyContext&) {
        return std::make_unique<LargestFirstPolicy>();
      });
  coordination_registry().add(largest_first);
  strategy_registry().add(StrategySpec{largest_first, daly_period(),
                                       period_minus_commit_offset()});

  // Both are now plain names — exactly how a CLI or config file would pick
  // them up.
  const std::vector<StrategySpec> strategies = {
      strategy_from_name("Ordered-NB-Daly"),
      strategy_from_name("Least-Waste"),
      strategy_from_name("Smallest-First-Daly"),
      strategy_from_name("Largest-First-Daly"),
  };

  const ScenarioConfig scenario = ScenarioBuilder::cielo_apex()
                                      .pfs_bandwidth(units::gb_per_s(40))
                                      .node_mtbf(units::years(2))
                                      .seed(7)
                                      .build();

  std::cout << "Custom strategies via the registry — Cielo/APEX @ 40 GB/s, "
               "node MTBF 2 y, "
            << replicas << " replicas\n\n";

  const auto options = MonteCarloOptions::from_env(replicas);
  const auto report = run_monte_carlo(scenario, strategies, options);

  TablePrinter table({"strategy", "waste (mean)", "q1", "q3"});
  for (const auto& outcome : report.outcomes) {
    const Candlestick c = outcome.waste_ratio.candlestick();
    table.add_row({outcome.strategy.name(), TablePrinter::fmt(c.mean, 4),
                   TablePrinter::fmt(c.q1, 4), TablePrinter::fmt(c.q3, 4)});
  }
  table.print(std::cout);

  std::cout << "\nToken arbitration matters at scarce bandwidth: Least-Waste "
               "minimises expected\nwaste, smallest-first approximates it by "
               "clearing cheap commits early, and\nlargest-first head-of-line "
               "blocks everyone behind the bulkiest transfer.\n";
  return 0;
}
