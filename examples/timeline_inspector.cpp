// timeline_inspector — watch a strategy schedule checkpoints in real time.
//
// Runs a small platform under two strategies with the *same* failure trace
// and renders the first hours as ASCII Gantt charts, making the paper's §3
// mechanics visible: under blocking Ordered the jobs idle ('w') while the
// token is busy; under Least-Waste the same jobs keep computing ('=') and
// commit ('K') when the waste-minimising scheduler picks them.
//
// Usage: timeline_inspector [--hours H]

#include <cstdlib>
#include <iostream>
#include <string>

#include "coopcr.hpp"

using namespace coopcr;

namespace {

double arg_double(int argc, char** argv, const std::string& flag,
                  double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::atof(argv[i + 1]);
  }
  return fallback;
}

// A small demonstration platform: 16 units, 10 GB/s PFS. The node MTBF is
// deliberately terrible (~3.7 days) so the Daly periods drop to ~1.5 h and
// several checkpoints land inside the rendered window.
PlatformSpec demo_platform() {
  PlatformSpec p;
  p.name = "demo";
  p.nodes = 16;
  p.cores_per_node = 8;
  p.memory_bytes = units::terabytes(8);
  p.pfs_bandwidth = units::gb_per_s(10);
  p.node_mtbf = units::years(0.01);
  return p;
}

// Two classes tuned so several checkpoints land within a few hours.
std::vector<ClassOnPlatform> demo_classes(const PlatformSpec& platform) {
  ApplicationClass big;
  big.name = "big";
  big.workload_share = 0.5;
  big.work_seconds = units::hours(6);
  big.cores = 64;  // 8 units
  big.input_fraction = 0.10;
  big.output_fraction = 0.30;
  big.checkpoint_fraction = 1.0;

  ApplicationClass small;
  small.name = "small";
  small.workload_share = 0.5;
  small.work_seconds = units::hours(3);
  small.cores = 32;  // 4 units
  small.input_fraction = 0.20;
  small.output_fraction = 0.50;
  small.checkpoint_fraction = 0.8;

  return resolve_all({big, small}, platform);
}

std::vector<Job> demo_jobs(const std::vector<ClassOnPlatform>& classes) {
  std::vector<Job> jobs;
  auto add = [&](int cls_index, JobId id) {
    const auto& cls = classes[static_cast<std::size_t>(cls_index)];
    Job j;
    j.id = id;
    j.class_index = cls_index;
    j.nodes = cls.nodes;
    j.total_work = cls.app.work_seconds;
    j.input_bytes = cls.input_bytes;
    j.output_bytes = cls.output_bytes;
    j.checkpoint_bytes = cls.checkpoint_bytes;
    j.root = id;
    jobs.push_back(j);
  };
  add(0, 0);        // one big job (8 units)
  add(1, 1);        // two small jobs (4 units each)
  add(1, 2);
  return jobs;
}

void show(const Strategy& strategy, double hours) {
  const PlatformSpec platform = demo_platform();
  const auto classes = demo_classes(platform);

  SimulationConfig cfg;
  cfg.platform = platform;
  cfg.classes = classes;
  cfg.strategy = strategy;
  cfg.segment_start = 0.0;
  cfg.segment_end = units::days(2);
  cfg.horizon = units::days(2);
  TraceRecorder trace;
  cfg.trace = &trace;

  // One hand-placed failure to show the recovery path.
  const std::vector<Failure> failures = {{units::hours(2.0), 0}};
  const SimulationResult result = simulate(cfg, demo_jobs(classes), failures);

  std::cout << "=== " << strategy.name() << " ===\n"
            << render_gantt(trace, 0.0, units::hours(hours), 96)
            << "jobs done " << result.counters.jobs_completed
            << ", checkpoints " << result.counters.checkpoints_completed
            << ", failures hitting jobs " << result.counters.failures_on_jobs
            << ", waste " << TablePrinter::fmt(result.wasted, 0)
            << " unit-s\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double hours = arg_double(argc, argv, "--hours", 8.0);
  std::cout << "Timeline inspector — 16-unit demo platform, 10 GB/s PFS, "
               "failure injected at t = 2 h on node 0\n\n";
  show(ordered_daly(), hours);
  show(least_waste(), hours);
  std::cout << "Note how the blocking Ordered run shows 'w' stretches where\n"
               "jobs idle for the I/O token, while Least-Waste keeps them\n"
               "computing ('=') until their commit ('K') is granted.\n";
  return 0;
}
