// coopcr_sweep — distributed, resumable sweep campaigns from the command
// line.
//
// The CLI drives the exp::spec_registry of predefined experiments (a fast
// demo grid plus the paper's Figure 1 / Figure 2 sweeps) through either
// execution engine, selected purely via exp::ExecutorOptions and built
// behind the exp::SweepExecutor interface:
//
//   --shards 0   in-process exp::SweepRunner (the thread-pool reference)
//   --shards N   dist::DistSweepRunner with N worker processes
//
// Both paths produce byte-identical CSV/JSON artifacts — that equivalence
// is what the CI kill-resume smoke job diffs. With --journal the sweep is
// durable: kill it (or a worker) at any point and rerun with --resume to
// finish only the missing units.
//
//   coopcr_sweep --spec fig1 --replicas 20 --shards 4 \
//       --journal fig1.journal --out artifacts/
//   ...SIGKILL...
//   coopcr_sweep --spec fig1 --replicas 20 --shards 4 \
//       --journal fig1.journal --resume --out artifacts/
//
// --exec-workers spawns workers by re-executing this binary with --worker
// (they rebuild the spec from their own command line and the coordinator
// verifies the spec digest) instead of forking the coordinator's image —
// the mode a future multi-host launcher would use.
//
// Env knobs (flags win): COOPCR_SHARDS, COOPCR_JOURNAL, COOPCR_REPLICAS,
// COOPCR_CSV_DIR, COOPCR_RESPAWN, COOPCR_HEARTBEAT_MS, COOPCR_TRANSPORT,
// COOPCR_RESIZE_AT, COOPCR_FAULT_PLAN.
//
// A running dist campaign also resizes elastically on signals: SIGUSR1
// grows the fleet by one worker, SIGUSR2 shrinks it by one (busy workers
// drain their in-flight unit first).

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coopcr.hpp"
#include "dist/wire.hpp"  // kWorkerInFd/kWorkerOutFd — below the facade

using namespace coopcr;

namespace {

void usage(std::ostream& os) {
  os << "usage: coopcr_sweep [options]\n"
        "  --spec NAME        experiment to run (--list-specs; default demo)\n"
        "  --replicas N       Monte Carlo replicas per grid point "
        "(COOPCR_REPLICAS; default 4)\n"
        "  --shards N         worker processes; 0 = in-process reference "
        "runner (COOPCR_SHARDS; default 2)\n"
        "  --journal PATH     durable campaign journal (COOPCR_JOURNAL)\n"
        "  --resume           replay --journal, run only the missing units\n"
        "  --out DIR          write <spec>.csv / <spec>.json artifacts "
        "(COOPCR_CSV_DIR)\n"
        "  --exec-workers     spawn workers by re-executing this binary\n"
        "  --antithetic       simulate replicas in antithetic pairs "
        "(COOPCR_ANTITHETIC; needs even --replicas)\n"
        "  --control-variate  closed-form control-variate estimator "
        "(COOPCR_CONTROL_VARIATE)\n"
        "  --target-ci W      sequential stopping: grow replicas until every "
        "95% CI is <= W, on any backend (COOPCR_TARGET_CI)\n"
        "  --max-replicas N   replica cap for --target-ci; 0 = 64x initial "
        "(COOPCR_MAX_REPLICAS)\n"
        "  --contrast NAME    paired strategy-contrast estimator vs reference "
        "strategy NAME (COOPCR_CONTRAST)\n"
        "  --strata-bins N    post-stratify estimates on N quantile bins of "
        "a workload feature (COOPCR_STRATA_BINS; 0 = off)\n"
        "  --strata-feature F stratification feature: work_total | work_jobs "
        "| work_max_share (COOPCR_STRATA_FEATURE)\n"
        "  --respawn N        budget for respawning dead workers "
        "(COOPCR_RESPAWN; default 0)\n"
        "  --heartbeat-ms N   kill workers silent past N ms with a unit in "
        "flight (COOPCR_HEARTBEAT_MS; 0 = off)\n"
        "  --transport NAME   worker channel: pipe | socketpair "
        "(COOPCR_TRANSPORT; default pipe)\n"
        "  --resize-at N:S    resize the fleet to S workers after N units; "
        "repeatable (COOPCR_RESIZE_AT, comma-separated)\n"
        "  --fault-plan SPEC  scripted fault injection, e.g. "
        "kill=0@3,interrupt=6 (COOPCR_FAULT_PLAN; see "
        "dist/fault_injection.hpp)\n"
        "  --max-units N      abort after N fresh units (kill-resume "
        "testing)\n"
        "  --kill-worker-after N  worker 0 SIGKILLs itself after N units\n"
        "  --list-specs       list registry specs and exit\n"
        "  --worker           internal: serve units on fds 3/4\n"
        "  --kill-after N     internal: worker self-kill hook\n"
        "  --stall N:MS       internal: worker stalls MS ms before result N\n";
}

int int_arg(const std::string& flag, const char* value) {
  COOPCR_CHECK(value != nullptr, flag + " needs a value");
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(value, &used);
    COOPCR_CHECK(used == std::string(value).size() && parsed >= 0,
                 flag + ": bad value \"" + value + "\"");
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error(flag + ": bad value \"" + std::string(value) + "\"");
  }
}

double double_arg(const std::string& flag, const char* value) {
  COOPCR_CHECK(value != nullptr, flag + " needs a value");
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    COOPCR_CHECK(used == std::string(value).size() && parsed >= 0.0,
                 flag + ": bad value \"" + value + "\"");
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error(flag + ": bad value \"" + std::string(value) + "\"");
  }
}

/// Parse one "--stall N:MS" worker directive.
dist::WorkerDirectives::Stall stall_arg(const std::string& flag,
                                        const char* value) {
  COOPCR_CHECK(value != nullptr, flag + " needs a value");
  const std::string text = value;
  const std::size_t at = text.find(':');
  COOPCR_CHECK(at != std::string::npos,
               flag + ": expected N:MS, got \"" + text + "\"");
  dist::WorkerDirectives::Stall stall;
  stall.before_result = int_arg(flag, text.substr(0, at).c_str());
  stall.ms = int_arg(flag, text.substr(at + 1).c_str());
  COOPCR_CHECK(stall.before_result >= 1 && stall.ms >= 1,
               flag + ": N and MS must be >= 1 in \"" + text + "\"");
  return stall;
}

/// Split a comma-separated env value ("4:3,8:1") into entries.
std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) out.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string spec_name = "demo";
    int replicas = env::int_knob("COOPCR_REPLICAS", 4, 1);
    int shards = env::int_knob("COOPCR_SHARDS", 2, 0);
    std::string journal = env::string_knob("COOPCR_JOURNAL").value_or("");
    std::string out_dir;
    bool resume = false;
    bool exec_workers = false;
    bool worker_mode = false;
    int max_units = 0;
    int kill_after = 0;
    bool antithetic = env::flag_knob("COOPCR_ANTITHETIC");
    bool control_variate = env::flag_knob("COOPCR_CONTROL_VARIATE");
    double target_ci = env::double_knob("COOPCR_TARGET_CI", 0.0, 0.0);
    int max_replicas = env::int_knob("COOPCR_MAX_REPLICAS", 0, 0);
    std::string contrast = env::string_knob("COOPCR_CONTRAST").value_or("");
    int strata_bins = env::int_knob("COOPCR_STRATA_BINS", 0, 0);
    std::string strata_feature =
        env::string_knob("COOPCR_STRATA_FEATURE").value_or("");
    int max_respawns = env::int_knob("COOPCR_RESPAWN", 0, 0);
    int heartbeat_ms = env::int_knob("COOPCR_HEARTBEAT_MS", 0, 0);
    std::string transport = env::string_knob("COOPCR_TRANSPORT").value_or("");
    std::vector<std::string> resize_at =
        split_commas(env::string_knob("COOPCR_RESIZE_AT").value_or(""));
    std::string fault_plan_text =
        env::string_knob("COOPCR_FAULT_PLAN").value_or("");
    std::string fault_plan_knob = "COOPCR_FAULT_PLAN";
    std::vector<dist::WorkerDirectives::Stall> stalls;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const char* next = (i + 1 < argc) ? argv[i + 1] : nullptr;
      if (arg == "--spec") {
        COOPCR_CHECK(next, "--spec needs a value");
        spec_name = next;
        ++i;
      } else if (arg == "--replicas") {
        replicas = int_arg(arg, next);
        COOPCR_CHECK(replicas >= 1, "--replicas must be >= 1");
        ++i;
      } else if (arg == "--shards") {
        shards = int_arg(arg, next);
        ++i;
      } else if (arg == "--journal") {
        COOPCR_CHECK(next, "--journal needs a value");
        journal = next;
        ++i;
      } else if (arg == "--out") {
        COOPCR_CHECK(next, "--out needs a value");
        out_dir = next;
        ++i;
      } else if (arg == "--resume") {
        resume = true;
      } else if (arg == "--exec-workers") {
        exec_workers = true;
      } else if (arg == "--antithetic") {
        antithetic = true;
      } else if (arg == "--control-variate") {
        control_variate = true;
      } else if (arg == "--target-ci") {
        target_ci = double_arg(arg, next);
        ++i;
      } else if (arg == "--max-replicas") {
        max_replicas = int_arg(arg, next);
        ++i;
      } else if (arg == "--contrast") {
        COOPCR_CHECK(next, "--contrast needs a value");
        contrast = next;
        ++i;
      } else if (arg == "--strata-bins") {
        strata_bins = int_arg(arg, next);
        ++i;
      } else if (arg == "--strata-feature") {
        COOPCR_CHECK(next, "--strata-feature needs a value");
        strata_feature = next;
        ++i;
      } else if (arg == "--max-units") {
        max_units = int_arg(arg, next);
        ++i;
      } else if (arg == "--kill-worker-after") {
        kill_after = int_arg(arg, next);
        ++i;
      } else if (arg == "--respawn") {
        max_respawns = int_arg(arg, next);
        ++i;
      } else if (arg == "--heartbeat-ms") {
        heartbeat_ms = int_arg(arg, next);
        ++i;
      } else if (arg == "--transport") {
        COOPCR_CHECK(next, "--transport needs a value");
        transport = next;
        ++i;
      } else if (arg == "--resize-at") {
        COOPCR_CHECK(next, "--resize-at needs a value");
        resize_at.push_back(next);
        ++i;
      } else if (arg == "--fault-plan") {
        COOPCR_CHECK(next, "--fault-plan needs a value");
        fault_plan_text = next;
        fault_plan_knob = "--fault-plan";
        ++i;
      } else if (arg == "--worker") {
        worker_mode = true;
      } else if (arg == "--kill-after") {
        kill_after = int_arg(arg, next);
        ++i;
      } else if (arg == "--stall") {
        stalls.push_back(stall_arg(arg, next));
        ++i;
      } else if (arg == "--list-specs") {
        for (const exp::NamedSpec& entry : exp::spec_registry()) {
          std::cout << entry.name << "\t" << entry.blurb << "\n";
        }
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else {
        usage(std::cerr);
        throw Error("unknown argument: " + arg);
      }
    }

    // Registry specs stay pure functions of (name, replicas); the
    // variance-reduction knobs are overlaid afterwards — in worker mode too,
    // and *before* worker_serve, because the spec digest folds the pairing
    // options in and both sides must build the same campaign shape.
    exp::ExperimentSpec spec = exp::build_named_spec(spec_name, replicas);
    {
      MonteCarloOptions mc = spec.campaign_options();
      mc.antithetic = antithetic;
      mc.control_variate = control_variate;
      mc.target_ci_width = target_ci;
      mc.max_replicas = max_replicas;
      mc.contrast_reference = contrast;
      mc.strata_bins = strata_bins;
      if (!strata_feature.empty()) mc.strata_feature = strata_feature;
      spec.options(mc);
    }

    if (worker_mode) {
      // Exec-mode worker: rebuilt the spec above from --spec/--replicas;
      // serve units on the fixed pipe fds until shutdown.
      dist::WorkerDirectives directives;
      directives.kill_after = kill_after;
      directives.stalls = stalls;
      dist::worker_serve(spec, dist::kWorkerInFd, dist::kWorkerOutFd,
                         directives);
      return 0;
    }

    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      ::setenv("COOPCR_CSV_DIR", out_dir.c_str(), 1);
    }

    std::cerr << "[coopcr_sweep] spec " << spec.name() << ": "
              << spec.grid_size() << " points x " << replicas
              << " replicas, engine "
              << (shards == 0 ? std::string("in-process")
                              : std::to_string(shards) + " shards")
              << (journal.empty() ? "" : ", journal " + journal)
              << (resume ? " (resume)" : "") << "\n";

    exp::ExecutorOptions options;
    if (shards == 0) {
      COOPCR_CHECK(!resume && journal.empty() && max_units == 0 &&
                       kill_after == 0,
                   "--journal/--resume/--max-units/--kill-worker-after "
                   "require --shards >= 1");
      COOPCR_CHECK(max_respawns == 0 && heartbeat_ms == 0 &&
                       transport.empty() && resize_at.empty() &&
                       fault_plan_text.empty(),
                   "--respawn/--heartbeat-ms/--transport/--resize-at/"
                   "--fault-plan require --shards >= 1");
      options.backend = exp::ExecutorBackend::kInProcess;
      options.threads = env::int_knob("COOPCR_THREADS", 0, 0);
    } else {
      COOPCR_CHECK(!resume || !journal.empty(),
                   "--resume requires --journal (or COOPCR_JOURNAL)");
      options.backend = exp::ExecutorBackend::kDist;
      options.shards = shards;
      options.journal = journal;
      options.resume = resume;
      options.max_units = max_units;
      options.kill_worker_after = kill_after;
      options.max_respawns = max_respawns;
      options.heartbeat_ms = heartbeat_ms;
      options.transport = transport;
      options.resize_at = resize_at;
      if (!fault_plan_text.empty()) {
        options.fault_plan = std::make_shared<dist::FaultPlan>(
            dist::FaultPlan::parse(fault_plan_text, fault_plan_knob));
      }
      if (exec_workers) {
        options.worker_command = {argv[0], "--worker", "--spec", spec_name,
                                  "--replicas", std::to_string(replicas)};
        // Forward the options the spec digest covers, so an exec worker
        // rebuilds the exact same campaign shape.
        if (antithetic) options.worker_command.push_back("--antithetic");
        if (control_variate) {
          options.worker_command.push_back("--control-variate");
        }
        if (target_ci > 0.0) {
          options.worker_command.push_back("--target-ci");
          // Round-trip formatting: the spec digest folds the exact bit
          // pattern, so the worker must parse back the identical double.
          options.worker_command.push_back(format_number(target_ci));
        }
        if (max_replicas > 0) {
          options.worker_command.push_back("--max-replicas");
          options.worker_command.push_back(std::to_string(max_replicas));
        }
        if (!contrast.empty()) {
          options.worker_command.push_back("--contrast");
          options.worker_command.push_back(contrast);
        }
        if (strata_bins > 0) {
          options.worker_command.push_back("--strata-bins");
          options.worker_command.push_back(std::to_string(strata_bins));
        }
        if (!strata_feature.empty()) {
          options.worker_command.push_back("--strata-feature");
          options.worker_command.push_back(strata_feature);
        }
      }
    }
    std::unique_ptr<exp::SweepExecutor> executor =
        exp::make_sweep_executor(options);
    if (shards > 0) {
      executor->on_point(
          [](const exp::GridPoint& point, const MonteCarloReport&) {
            std::cerr << "[coopcr_sweep] " << point.label() << " done\n";
          });
    }
    exp::ExperimentReport report = executor->run(spec);

    // Human-readable summary on stdout; machine artifacts via --out.
    for (const auto& pr : report.points) {
      std::cout << pr.point.label();
      // Under sequential stopping each point may have grown to a different
      // replica count — surface it next to the label.
      if (pr.report.vr_enabled) {
        std::cout << " [replicas " << pr.report.replicas << "]";
      }
      std::cout << "\n";
      for (const auto& outcome : pr.report.outcomes) {
        std::cout << "  " << outcome.strategy.name()
                  << ": waste ratio mean = "
                  << TablePrinter::fmt(outcome.waste_ratio.mean(), 4) << "\n";
      }
    }
    if (const auto path = report.emit_csv()) {
      std::cout << "[csv] wrote " << *path << "\n";
    }
    if (const auto path = report.emit_json()) {
      std::cout << "[json] wrote " << *path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "coopcr_sweep: " << e.what() << "\n";
    return 1;
  }
}
