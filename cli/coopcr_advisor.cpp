// coopcr_advisor — the checkpoint-advisor service from the command line.
//
// Ingest sweep artifacts, then answer structured queries: one single-line
// JSON query per stdin line, one versioned JSON answer per stdout line.
// Answers come from multilinear interpolation over the ingested grids when
// the query point is inside the hull, and from an on-demand fallback
// campaign (through the exp::SweepExecutor backend selected by --backend /
// --shards) when it is not. Repeated queries hit the digest-keyed LRU
// cache and return byte-identical answer text.
//
//   coopcr_sweep --spec demo --replicas 8 --out artifacts/
//   printf '%s\n' \
//     '{"coords":{"pfs_bandwidth_gbps":80,"interference_alpha":0.5}}' \
//     | coopcr_advisor --ingest artifacts/
//
// Determinism contract: answer lines on stdout are a pure function of the
// ingested artifacts, the engine options and the query — all volatile
// output (the {"stats":{...}} block with cache hit/miss counters,
// interpolated-vs-computed counts and per-query latency) goes to stderr.
// Batch mode prints one stats block at EOF; --serve flushes every answer
// and prints a stats block after each query.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "coopcr.hpp"

using namespace coopcr;

namespace {

void usage(std::ostream& os) {
  os << "usage: coopcr_advisor --ingest PATH [options]\n"
        "  --ingest PATH      artifact .json file or directory of them "
        "(repeatable, at least one)\n"
        "  --metric NAME      default ranking metric (default waste_ratio)\n"
        "  --max-ci W         recompute when the interpolated 95% CI "
        "half-width exceeds W (default: trust the grid)\n"
        "  --replicas N       fallback campaign replicas (default: the "
        "grid's own count)\n"
        "  --target-ci W      fallback campaigns grow replicas until every "
        "95% CI width is <= W, on either backend (default: fixed count)\n"
        "  --backend NAME     fallback engine: inprocess | dist (default "
        "inprocess)\n"
        "  --shards N         dist backend worker processes (default 2)\n"
        "  --threads N        in-process backend threads; 0 = hardware "
        "concurrency\n"
        "  --cache N          answer cache capacity; 0 disables (default "
        "256)\n"
        "  --serve            flush each answer; stats block after every "
        "query\n"
        "  --list             print the ingested grids and exit\n";
}

int int_arg(const std::string& flag, const char* value) {
  COOPCR_CHECK(value != nullptr, flag + " needs a value");
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(value, &used);
    COOPCR_CHECK(used == std::string(value).size() && parsed >= 0,
                 flag + ": bad value \"" + value + "\"");
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error(flag + ": bad value \"" + std::string(value) + "\"");
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

double double_arg(const std::string& flag, const char* value) {
  COOPCR_CHECK(value != nullptr, flag + " needs a value");
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    COOPCR_CHECK(used == std::string(value).size() && parsed >= 0.0,
                 flag + ": bad value \"" + value + "\"");
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error(flag + ": bad value \"" + std::string(value) + "\"");
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> ingest_paths;
    serve::AdvisorOptions options;
    bool serve_mode = false;
    bool list_only = false;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const char* next = (i + 1 < argc) ? argv[i + 1] : nullptr;
      if (arg == "--ingest") {
        COOPCR_CHECK(next, "--ingest needs a value");
        ingest_paths.push_back(next);
        ++i;
      } else if (arg == "--metric") {
        COOPCR_CHECK(next, "--metric needs a value");
        options.engine.default_metric = next;
        ++i;
      } else if (arg == "--max-ci") {
        options.engine.max_ci_halfwidth = double_arg(arg, next);
        ++i;
      } else if (arg == "--replicas") {
        options.engine.fallback_replicas = int_arg(arg, next);
        ++i;
      } else if (arg == "--target-ci") {
        options.engine.fallback_target_ci = double_arg(arg, next);
        ++i;
      } else if (arg == "--backend") {
        COOPCR_CHECK(next, "--backend needs a value");
        options.engine.executor.backend = exp::executor_backend_from_name(next);
        ++i;
      } else if (arg == "--shards") {
        options.engine.executor.shards = int_arg(arg, next);
        COOPCR_CHECK(options.engine.executor.shards >= 1,
                     "--shards must be >= 1");
        ++i;
      } else if (arg == "--threads") {
        options.engine.executor.threads = int_arg(arg, next);
        ++i;
      } else if (arg == "--cache") {
        options.cache_capacity = static_cast<std::size_t>(int_arg(arg, next));
        ++i;
      } else if (arg == "--serve") {
        serve_mode = true;
      } else if (arg == "--list") {
        list_only = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else {
        usage(std::cerr);
        throw Error("unknown argument: " + arg);
      }
    }
    COOPCR_CHECK(!ingest_paths.empty(),
                 "nothing to serve — pass --ingest at least once");

    serve::Advisor advisor(options);
    std::size_t fresh = 0;
    for (const std::string& path : ingest_paths) {
      if (std::filesystem::is_directory(path)) {
        fresh += advisor.ingest_dir(path);
      } else {
        fresh += advisor.ingest_file(path) ? 1 : 0;
      }
    }
    std::cerr << "[coopcr_advisor] ingested " << fresh << " artifact"
              << (fresh == 1 ? "" : "s") << " into "
              << advisor.store().grid_count() << " grid"
              << (advisor.store().grid_count() == 1 ? "" : "s") << "\n";

    if (list_only) {
      for (const std::string& name : advisor.store().experiments()) {
        const serve::StoredGrid& grid = *advisor.store().find(name);
        std::cout << name << "\t" << grid.point_count() << "/"
                  << grid.cell_count() << " points\t" << grid.replicas
                  << " replicas\t" << grid.strategies.size()
                  << " strategies" << (grid.complete() ? "" : "\tINCOMPLETE")
                  << "\n";
      }
      return 0;
    }

    // The query loop: bad lines produce a deterministic {"error":...} line
    // and the loop continues — one malformed query must not kill a batch.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        std::cout << advisor.answer_json(line) << "\n";
      } catch (const std::exception& e) {
        std::cout << "{\"error\":\"" << json_escape(e.what()) << "\"}\n";
      }
      if (serve_mode) {
        std::cout.flush();
        std::cerr << advisor.stats().to_json() << "\n";
      }
    }
    if (!serve_mode) std::cerr << advisor.stats().to_json() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "coopcr_advisor: " << e.what() << "\n";
    return 1;
  }
}
