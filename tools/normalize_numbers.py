#!/usr/bin/env python3
"""Normalize every number in a JSON-lines stream for golden comparison.

The advisor's answers are bit-deterministic on one machine, but the
committed golden has to survive *cross-toolchain* libm drift (exp/log may
differ in the last ulp between glibc versions). Rounding every float to 9
significant digits before diffing keeps the comparison strict far beyond
any physically meaningful precision while ignoring last-ulp noise.

Usage: normalize_numbers.py < answers.jsonl > answers.normalized.jsonl
"""

import json
import sys


def normalize(value):
    if isinstance(value, float):
        return float(f"{value:.9g}")
    if isinstance(value, list):
        return [normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: normalize(v) for k, v in value.items()}
    return value


def main():
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        json.dump(normalize(doc), sys.stdout, separators=(",", ":"))
        sys.stdout.write("\n")


if __name__ == "__main__":
    main()
