#!/usr/bin/env python3
"""Check intra-repo markdown links.

Scans the given markdown files (or every tracked *.md when none are given)
for inline links/images `[text](target)` and reference definitions
`[label]: target`, and verifies that every relative target resolves to an
existing file or directory, relative to the containing file. External
schemes (http/https/mailto) and pure in-page anchors (#...) are skipped;
a `path#fragment` target is checked for the path part only.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link: `file:line: broken link -> target`). Stdlib only — runs anywhere CI
has a python3.
"""

import re
import subprocess
import sys
from pathlib import Path

# Inline [text](target) — also matches images; reference [label]: target.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

FENCE = re.compile(r"^\s*(```|~~~)")


def iter_links(path: Path):
    """Yield (line_number, target) pairs outside fenced code blocks."""
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE.finditer(line):
            yield number, match.group(1)
        match = REFERENCE.match(line)
        if match:
            yield number, match.group(1)


def tracked_markdown(root: Path):
    out = subprocess.run(
        ["git", "ls-files", "*.md"], cwd=root, check=True,
        capture_output=True, text=True)
    return [root / name for name in out.stdout.splitlines()]


def main(argv):
    root = Path(__file__).resolve().parent.parent
    files = [Path(a) for a in argv[1:]] or tracked_markdown(root)
    broken = []
    checked = 0
    for md in files:
        if not md.exists():
            broken.append(f"{md}: file does not exist")
            continue
        for line, target in iter_links(md):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            checked += 1
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (md.parent / relative).exists():
                broken.append(f"{md}:{line}: broken link -> {target}")
    for problem in broken:
        print(problem)
    print(f"checked {checked} intra-repo links in {len(files)} files: "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
