#!/usr/bin/env python3
"""Gate a fresh bench run against the committed BENCH_engine.json baseline.

Two kinds of checks:

* **Throughput ratios** — every tracked rate metric in the fresh run
  (micro `items_per_second`, macro `replicas_per_sec` / `events_per_sec` /
  `strategy_runs_per_sec`) must be at least `baseline / slack`. Shared CI
  runners are noisy, so the default slack factor is generous (3x): the gate
  catches order-of-magnitude regressions — a quadratic sneaking into the
  event loop, a debug build measured by mistake — not single-digit drift.
  Time-valued keys (`*wall_seconds`, `*_ns`) are intentionally not gated:
  their rate counterparts already cover them without double-counting noise.

* **Estimator floors** — absolute invariants of the variance-reduction
  stack that hold on any machine because they are ratios of statistics, not
  wall-clock: the replica-economy EAP row's vr_factor and reduction, and
  the contrast-economy APEX-mix row's vr_factor (> 2) and replica reduction
  (>= 3). These are the headline numbers EXPERIMENTS.md ("Replica economy")
  advertises; a fresh run that loses them means the estimator itself
  regressed, no slack applies. `--skip-floors` exists for smoke runs with
  loosened CI targets where the floors are not meaningful.

Usage:
  python3 tools/bench_check.py --baseline BENCH_engine.json \
      --fresh fresh.json [--slack 3.0] [--skip-floors]

Exit status 0 when every check passes; 1 with one line per violation on
stderr otherwise. stdlib only — no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# (path into the "macro" object, floor) — statistics, not wall-clock, so no
# slack: see the module docstring.
MACRO_FLOORS = [
    ("replica_economy.vr_factor", 2.0),
    ("replica_economy.reduction", 2.0),
    ("contrast_economy.vr_factor", 1.5),
    ("contrast_economy.apex_mix.vr_factor", 2.0),
    ("contrast_economy.apex_mix.reduction", 3.0),
]

RATE_LEAVES = {
    "replicas_per_sec",
    "events_per_sec",
    "strategy_runs_per_sec",
    "items_per_second",
}


def lookup(node: object, path: str) -> object | None:
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def rate_keys(node: object, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric rate leaf under `node` to dotted-path -> value."""
    rates: dict[str, float] = {}
    if not isinstance(node, dict):
        return rates
    for key, value in node.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            rates.update(rate_keys(value, f"{path}."))
        elif key in RATE_LEAVES and isinstance(value, (int, float)):
            rates[path] = float(value)
    return rates


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_engine.json")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="BENCH_engine.json from the run under test")
    parser.add_argument("--slack", type=float, default=3.0,
                        help="fresh rates may be up to this factor below "
                             "baseline (default 3.0)")
    parser.add_argument("--skip-floors", action="store_true",
                        help="skip the estimator floors (smoke runs with "
                             "loosened CI targets)")
    args = parser.parse_args(argv)
    if args.slack < 1.0:
        parser.error("--slack must be >= 1.0")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    violations: list[str] = []
    checked = 0

    base_rates = rate_keys(baseline)
    fresh_rates = rate_keys(fresh)
    for path, base_value in sorted(base_rates.items()):
        if base_value <= 0.0:
            continue
        fresh_value = fresh_rates.get(path)
        if fresh_value is None:
            violations.append(f"{path}: present in baseline, missing from "
                              f"fresh run")
            continue
        checked += 1
        floor = base_value / args.slack
        if fresh_value < floor:
            violations.append(
                f"{path}: {fresh_value:.6g} < baseline {base_value:.6g} / "
                f"slack {args.slack:g} = {floor:.6g}")
        else:
            print(f"ok {path}: {fresh_value:.6g} "
                  f"(baseline {base_value:.6g}, floor {floor:.6g})")

    if not args.skip_floors:
        macro = fresh.get("macro", {})
        for path, floor in MACRO_FLOORS:
            value = lookup(macro, path)
            checked += 1
            if not isinstance(value, (int, float)):
                violations.append(f"macro.{path}: floor {floor:g} but the "
                                  f"fresh run has no such key")
            elif value < floor:
                violations.append(
                    f"macro.{path}: {value:.6g} below floor {floor:g}")
            else:
                print(f"ok macro.{path}: {value:.6g} (floor {floor:g})")

    if checked == 0:
        violations.append("no comparable metrics found — wrong files?")
    for line in violations:
        print(f"FAIL {line}", file=sys.stderr)
    print(f"{checked} checks, {len(violations)} violations")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
