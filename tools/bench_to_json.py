#!/usr/bin/env python3
"""Fold bench outputs into BENCH_engine.json — the repo's perf trajectory.

Inputs (either may be omitted; at least one is required):
  --micro micro.json   Google Benchmark JSON from
                       `micro_engine --benchmark_out=micro.json
                                     --benchmark_out_format=json`
  --macro macro.txt    stdout of `macro_campaign` ("key = value" lines)

Output (--output, default BENCH_engine.json):
  {
    "schema": 1,
    "context": {...google-benchmark host context...},
    "micro":  {"BM_EventQueueScheduleRun/10000": {
                  "real_time_ns": ..., "cpu_time_ns": ...,
                  "items_per_second": ...}, ...},
    "macro":  {"replicas_per_sec": ..., "wall_seconds": ..., ...}
  }

The file is meant to be tracked over time (CI uploads it per commit): compare
`items_per_second` / `replicas_per_sec` across commits to see the engine's
trajectory. See docs/ARCHITECTURE.md ("Performance model") for how to read
each metric and EXPERIMENTS.md for the measurement methodology.

stdlib only — no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def parse_micro(path: Path) -> tuple[dict, dict]:
    """Extract per-benchmark metrics from Google Benchmark JSON output."""
    data = json.loads(path.read_text())
    context = data.get("context", {})
    micro: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) — keep raw repetitions
        # only when no aggregate exists; prefer the median aggregate.
        name = bench.get("name", "")
        run_name = bench.get("run_name", name)
        run_type = bench.get("run_type", "iteration")
        aggregate = bench.get("aggregate_name", "")
        if run_type == "aggregate" and aggregate != "median":
            continue
        if run_type == "aggregate":
            key = run_name
        else:
            key = name
            if key in micro:
                continue  # keep the first repetition; median overwrites below
        entry = {
            "real_time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        micro[key] = entry
    return context, micro


def parse_macro(path: Path) -> dict:
    """Extract `macro_campaign.key = value` lines from the bench stdout.

    Dotted keys nest: `dist_scaling.shards_4.replicas_per_sec = 3.5`
    becomes macro["dist_scaling"]["shards_4"]["replicas_per_sec"] — the
    shard-count scaling curve lands as one structured object.
    """
    macro: dict[str, object] = {}
    for line in path.read_text().splitlines():
        if "=" not in line or not line.startswith("macro_campaign."):
            continue
        key, _, value = line.partition("=")
        key = key.strip().removeprefix("macro_campaign.")
        value = value.strip()
        parsed: object
        try:
            parsed = int(value)
        except ValueError:
            try:
                parsed = float(value)
            except ValueError:
                parsed = value
        *parents, leaf = key.split(".")
        node = macro
        for part in parents:
            child = node.setdefault(part, {})
            if not isinstance(child, dict):  # a leaf already used this name
                child = node[part] = {}
            node = child
        node[leaf] = parsed
    return macro


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--micro", type=Path, help="google-benchmark JSON")
    parser.add_argument("--macro", type=Path, help="macro_campaign stdout")
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_engine.json"))
    args = parser.parse_args(argv)
    if args.micro is None and args.macro is None:
        parser.error("provide at least one of --micro / --macro")

    result: dict[str, object] = {"schema": 1}
    if args.micro is not None:
        context, micro = parse_micro(args.micro)
        result["context"] = context
        result["micro"] = micro
        if not micro:
            print(f"warning: no benchmarks found in {args.micro}",
                  file=sys.stderr)
    if args.macro is not None:
        macro = parse_macro(args.macro)
        result["macro"] = macro
        if not macro:
            print(f"warning: no macro_campaign lines found in {args.macro}",
                  file=sys.stderr)

    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
